//! E9 — Lemma 9: the facility-location factor `f` enters the guarantee.
//!
//! The storage-cost bound is `f · (C^OPTW_s + C^OPTW_r)` for whichever UFL
//! solver backs phase 1. We swap solvers and compare the final total cost
//! and runtime, plus (on small instances) the measured end-to-end ratio
//! against the exact optimum per solver.

use dmn_approx::{place_object, ApproxConfig, FlSolverKind};
use dmn_core::cost::{evaluate_object, UpdatePolicy};
use dmn_exact::optimal_placement;
use dmn_graph::dijkstra::apsp;
use dmn_graph::generators;
use dmn_workloads::{WorkloadGen, WorkloadParams};

use super::{max, mean, rng, small_instance, time};
use crate::report::{fmt, Report, Table};

const SOLVERS: [(FlSolverKind, &str); 5] = [
    (FlSolverKind::LocalSearch, "local-search (5+eps)"),
    (FlSolverKind::LocalSearchWarm, "local-search warm (5+eps)"),
    (FlSolverKind::MettuPlaxton, "mettu-plaxton (3)"),
    (FlSolverKind::JainVazirani, "jain-vazirani (3)"),
    (FlSolverKind::Greedy, "greedy (log n)"),
];

/// Runs E9 and returns its report.
pub fn run() -> Report {
    let mut report = Report::new("E9", "Lemma 9: phase-1 solver ablation");

    // Medium instance: total cost + runtime per solver.
    let g = generators::random_geometric(80, 0.22, 10.0, &mut rng(9_000));
    let n = g.num_nodes();
    let metric = apsp(&g);
    let cs: Vec<f64> = (0..n).map(|v| 2.0 + (v % 4) as f64).collect();
    let gen = WorkloadGen::new(
        n,
        WorkloadParams {
            num_objects: 6,
            write_fraction: 0.25,
            ..Default::default()
        },
    );
    let objects = gen.generate(&mut rng(9_001));

    let mut t = Table::new(
        format!("geometric n = {n}, 6 objects: total cost and runtime by phase-1 solver"),
        &["solver", "total cost", "copies", "time (ms)"],
    );
    for (kind, name) in SOLVERS {
        let cfg = ApproxConfig {
            fl_solver: kind,
            ..ApproxConfig::default()
        };
        let (result, secs) = time(|| {
            let mut total = 0.0;
            let mut copies = 0usize;
            for w in &objects {
                let c = place_object(&metric, &cs, w, &cfg);
                total += evaluate_object(&metric, &cs, w, &c, UpdatePolicy::MstMulticast).total();
                copies += c.len();
            }
            (total, copies)
        });
        t.row(vec![
            name.to_string(),
            fmt(result.0),
            result.1.to_string(),
            format!("{:.1}", secs * 1e3),
        ]);
    }
    report.table(t);

    // Small instances: measured end-to-end approximation ratio per solver.
    let mut t2 = Table::new(
        "end-to-end ratio vs exact optimum (30 seeds, n in 6..=10)",
        &["solver", "mean ratio", "max ratio"],
    );
    for (kind, name) in SOLVERS {
        let cfg = ApproxConfig {
            fl_solver: kind,
            ..ApproxConfig::default()
        };
        let mut ratios = Vec::new();
        for seed in 0..30u64 {
            let mut r = rng(9_100 + seed);
            let n = 6 + (seed % 5) as usize;
            let (metric, cs, w) = small_instance(n, 2.0, 0.3, &mut r);
            let opt = optimal_placement(&metric, &cs, &w);
            let copies = place_object(&metric, &cs, &w, &cfg);
            let c = evaluate_object(&metric, &cs, &w, &copies, UpdatePolicy::MstMulticast);
            ratios.push(c.total() / opt.cost.max(1e-12));
        }
        t2.row(vec![
            name.to_string(),
            fmt(mean(&ratios)),
            fmt(max(&ratios)),
        ]);
    }
    report.table(t2);
    report.finding(
        "every constant-factor phase-1 solver yields comparable end-to-end quality, \
         matching Lemma 9's parametric dependence on f; runtimes differ by orders \
         of magnitude"
            .to_string(),
    );
    report
}
