//! E6 — model behaviour: writes penalize replication.
//!
//! The cost model's qualitative promise (Sections 1.1 and 3.2): as the
//! write share of an object grows, the optimal number of copies falls —
//! replication helps reads but multiplies update traffic. We sweep the
//! write fraction on a mesh (approximation algorithm + baselines) and on a
//! tree (exact general DP) and report cost and replication degree,
//! including where each strategy's crossover against FullReplication and
//! BestSingleNode falls.

use dmn_approx::baselines;
use dmn_approx::{place_object, ApproxConfig};
use dmn_core::cost::{evaluate_object, UpdatePolicy};
use dmn_core::instance::ObjectWorkload;
use dmn_graph::dijkstra::apsp;
use dmn_graph::generators;
use dmn_graph::tree::RootedTree;
use dmn_tree::optimal_tree_general;

use super::rng;
use crate::report::{fmt, Report, Table};

/// Runs E6 and returns its report.
pub fn run() -> Report {
    let mut report = Report::new("E6", "Writes penalize replication (copy-count crossover)");

    // Mesh: approximation algorithm vs baselines.
    let g = generators::grid(6, 6, |_, _| 1.0);
    let n = 36;
    let metric = apsp(&g);
    let cs = vec![3.0; n];
    let cfg = ApproxConfig::default();
    let mut t = Table::new(
        "6x6 mesh, total request mass 72: cost (copies) per strategy",
        &[
            "write frac",
            "approx",
            "greedy-local",
            "best-single",
            "full-repl",
        ],
    );
    let mut crossover_noted = false;
    let mut prev_copies = usize::MAX;
    for &wf in &[0.0, 0.1, 0.2, 0.4, 0.6, 0.8] {
        let mut w = ObjectWorkload::new(n);
        for v in 0..n {
            w.reads[v] = 2.0 * (1.0 - wf);
            w.writes[v] = 2.0 * wf;
        }
        let cell = |copies: &[usize]| -> String {
            let c = evaluate_object(&metric, &cs, &w, copies, UpdatePolicy::MstMulticast);
            format!("{} ({})", fmt(c.total()), copies.len())
        };
        let approx = place_object(&metric, &cs, &w, &cfg);
        let local = baselines::greedy_local_object(&metric, &cs, &w);
        let single = baselines::best_single_object(&metric, &cs, &w);
        let full = baselines::full_replication_object(&cs);
        if !crossover_noted && approx.len() <= 1 && prev_copies > 1 && wf > 0.0 {
            report.finding(format!(
                "approximation collapses to a single copy at write fraction ~{wf}"
            ));
            crossover_noted = true;
        }
        prev_copies = approx.len();
        t.row(vec![
            format!("{wf:.1}"),
            cell(&approx),
            cell(&local),
            cell(&single),
            cell(&full),
        ]);
    }
    report.table(t);

    // Tree: exact optimum from the general DP.
    let mut r = rng(6_000);
    let tg = generators::prufer_tree(60, (1.0, 5.0), &mut r);
    let tree = RootedTree::from_graph(&tg, 0);
    let tcs = vec![2.0; 60];
    let mut t2 = Table::new(
        "random 60-node tree: exact optimal copies vs write fraction",
        &["write frac", "optimal cost", "optimal copies"],
    );
    let mut copy_counts = Vec::new();
    for &wf in &[0.0, 0.1, 0.2, 0.4, 0.6, 0.8] {
        let mut w = ObjectWorkload::new(60);
        for v in 0..60 {
            w.reads[v] = 1.0 - wf;
            w.writes[v] = wf;
        }
        let sol = optimal_tree_general(&tree, &tcs, &w);
        copy_counts.push(sol.copies.len());
        t2.row(vec![
            format!("{wf:.1}"),
            fmt(sol.cost),
            sol.copies.len().to_string(),
        ]);
    }
    report.table(t2);
    assert!(
        copy_counts.windows(2).all(|p| p[0] >= p[1]),
        "copy count must fall monotonically with write share on symmetric workloads: {copy_counts:?}"
    );
    report.finding(format!(
        "exact tree optimum drops from {} to {} copies as the write share rises 0 -> 0.8",
        copy_counts.first().unwrap(),
        copy_counts.last().unwrap()
    ));
    report
}
