//! E12 (extension) — the model features the paper sketches but does not
//! develop: non-uniform object sizes, memory capacities, and the
//! congestion view.
//!
//! * **Non-uniform sizes** (Section 1.1: "all our results hold also in a
//!   non-uniform model"): placements computed on the size-rescaled uniform
//!   instance must be exactly optimal for the shaped objective (verified
//!   against shaped brute force on small instances).
//! * **Capacity constraints** (paper references 3, 11, 12): the greedy
//!   repair step's cost penalty as capacity tightens.
//! * **Congestion** (Maggs et al.): the total-cost optimum vs. the most
//!   loaded link — cost minimization also tames the hottest edge vs naive
//!   placements.

use dmn_approx::{enforce_capacities, place_all, respects_capacities, ApproxConfig};
use dmn_core::cost::{evaluate, UpdatePolicy};
use dmn_core::load::edge_loads;
use dmn_core::shapes::{equivalent_storage_costs, evaluate_object_shaped, ObjectShape};
use dmn_workloads::{Scenario, TopologyKind, WorkloadParams};

use super::{rng, small_instance};
use crate::report::{fmt, Report, Table};

/// Runs E12 and returns its report.
pub fn run() -> Report {
    let mut report = Report::new("E12", "extensions: sizes, capacities, congestion");

    // --- Non-uniform sizes: rescaled placement is optimal for the shaped
    // objective.
    let mut worst = 0.0_f64;
    for seed in 0..40u64 {
        let mut r = rng(12_000 + seed);
        let n = 5 + (seed % 4) as usize;
        let (metric, cs, w) = small_instance(n, 1.0, 0.3, &mut r);
        let shape = ObjectShape {
            transfer_size: 2.0,
            storage_size: 7.0,
        };
        // Optimal under the shaped objective by brute force.
        let mut best = f64::INFINITY;
        for mask in 1usize..(1 << n) {
            let copies: Vec<usize> = (0..n).filter(|v| mask >> v & 1 == 1).collect();
            let c = evaluate_object_shaped(
                &metric,
                &cs,
                &w,
                &copies,
                UpdatePolicy::MstMulticast,
                shape,
            );
            best = best.min(c.total());
        }
        // Uniform machinery on the rescaled instance.
        let cs_eq = equivalent_storage_costs(&cs, shape);
        let copies = dmn_approx::place_object(&metric, &cs_eq, &w, &ApproxConfig::default());
        let shaped =
            evaluate_object_shaped(&metric, &cs, &w, &copies, UpdatePolicy::MstMulticast, shape);
        worst = worst.max(shaped.total() / best);
    }
    let mut t1 = Table::new(
        "non-uniform sizes: approximation on the rescaled instance vs shaped optimum",
        &["instances", "transfer/storage size", "max ratio"],
    );
    t1.row(vec!["40".into(), "2 / 7".into(), fmt(worst)]);
    report.table(t1);
    report.finding(format!(
        "the uniform algorithms transfer to the non-uniform model by rescaling, \
         staying within {} of the shaped optimum — the paper's claim in Section 1.1",
        fmt(worst)
    ));

    // --- Capacities: cost penalty as per-node capacity tightens.
    let scenario = Scenario {
        name: "cap".into(),
        topology: TopologyKind::Grid { rows: 5, cols: 5 },
        nodes: 25,
        storage_cost: 1.0,
        workload: WorkloadParams {
            num_objects: 10,
            base_mass: 80.0,
            write_fraction: 0.15,
            ..Default::default()
        },
        seed: 12,
        capacities: None,
        stream: None,
        drift: None,
        faults: None,
        timeline: None,
    };
    let instance = scenario.build_instance();
    let unconstrained = place_all(&instance, &ApproxConfig::default());
    let base_cost = evaluate(&instance, &unconstrained, UpdatePolicy::MstMulticast).total();
    let mut t2 = Table::new(
        "5x5 mesh, 10 objects: capacity repair penalty",
        &[
            "cap per node",
            "copies",
            "total cost",
            "penalty vs unconstrained",
        ],
    );
    for cap_per_node in [10usize, 3, 2, 1] {
        let cap = vec![cap_per_node; instance.num_nodes()];
        let repaired = enforce_capacities(&instance, &unconstrained, &cap).expect("feasible");
        assert!(respects_capacities(&repaired, &cap));
        let c = evaluate(&instance, &repaired, UpdatePolicy::MstMulticast).total();
        t2.row(vec![
            cap_per_node.to_string(),
            repaired.total_copies().to_string(),
            fmt(c),
            format!("{:.2}x", c / base_cost),
        ]);
    }
    report.table(t2);
    report.finding(
        "capacity repair can *lower* cost below the unconstrained approximation: \
         the 3-phase output is constant-factor optimal, not locally optimal, so \
         the repair's drop/move moves double as an improvement pass"
            .to_string(),
    );

    // --- Congestion: the cost optimum also relieves the hottest link.
    let mut t3 = Table::new(
        "congestion (max weighted link load) by strategy",
        &["strategy", "total cost", "congestion"],
    );
    let single = dmn_approx::baselines::best_single_node(&instance);
    for (name, p) in [("krw-approx", &unconstrained), ("best-single", &single)] {
        let cost = evaluate(&instance, p, UpdatePolicy::MstMulticast).total();
        let cong = edge_loads(&instance, p).congestion(&instance.graph);
        t3.row(vec![name.to_string(), fmt(cost), fmt(cong)]);
    }
    report.table(t3);
    report.finding(
        "cost-driven replication also lowers the hottest-link load vs centralized \
         placement, though the model optimizes totals, not maxima (congestion is \
         Maggs et al.'s objective, not this paper's)"
            .to_string(),
    );
    report
}
