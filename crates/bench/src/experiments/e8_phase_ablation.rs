//! E8 — construction roles of the three phases (Section 2.2).
//!
//! The proof assigns each phase a job: phase 1 bounds storage (Lemma 9),
//! phase 2 restores read locality where storage radii demand it
//! (Claim 10), phase 3 removes write-expensive redundancy (Lemma 8's
//! separation). We ablate phases on an Internet-like network and report
//! the cost decomposition after each stage.

use dmn_approx::algorithm::place_object_traced;
use dmn_approx::ApproxConfig;
use dmn_core::cost::{evaluate_object, UpdatePolicy};
use dmn_graph::dijkstra::apsp;
use dmn_graph::generators::{self, TransitStubParams};
use dmn_workloads::{WorkloadGen, WorkloadParams};

use super::rng;
use crate::report::{fmt, Report, Table};

/// Runs E8 and returns its report.
pub fn run() -> Report {
    let mut report = Report::new("E8", "Phase ablation: what each phase contributes");
    let g = generators::transit_stub(
        TransitStubParams {
            transits: 4,
            stubs_per_transit: 2,
            nodes_per_stub: 12,
            ..Default::default()
        },
        &mut rng(8_000),
    );
    let n = g.num_nodes();
    let metric = apsp(&g);
    let cs: Vec<f64> = (0..n).map(|v| if v < 4 { 12.0 } else { 4.0 }).collect();

    let mut table = Table::new(
        format!("transit-stub n = {n}: cost decomposition after each phase"),
        &[
            "write frac",
            "stage",
            "copies",
            "storage",
            "read",
            "update",
            "total",
        ],
    );
    for &wf in &[0.05, 0.3, 0.7] {
        let gen = WorkloadGen::new(
            n,
            WorkloadParams {
                num_objects: 1,
                write_fraction: wf,
                base_mass: 200.0,
                ..Default::default()
            },
        );
        let w = &gen.generate(&mut rng(8_100))[0];
        let trace = place_object_traced(&metric, &cs, w, &ApproxConfig::default());
        for (stage, copies) in [
            ("phase 1 (FL)", &trace.after_phase1),
            ("phase 1-2 (+add)", &trace.after_phase2),
            ("full (+prune)", &trace.after_phase3),
        ] {
            let c = evaluate_object(&metric, &cs, w, copies, UpdatePolicy::MstMulticast);
            table.row(vec![
                format!("{wf:.2}"),
                stage.to_string(),
                copies.len().to_string(),
                fmt(c.storage),
                fmt(c.read),
                fmt(c.update()),
                fmt(c.total()),
            ]);
        }
    }
    report.table(table);
    report.finding(
        "phase 2 buys read locality with extra copies; phase 3 pays update cost back \
         by pruning — most visible at high write fractions"
            .to_string(),
    );
    report
}
