//! E7 — Section 1: the cost model generalizes the total communication
//! load model.
//!
//! Setting `ct(e) = 1 / bandwidth(e)` and `cs = 0` makes total cost equal
//! total communication load (bytes / bandwidth summed over links). We
//! build such instances, confirm the identity on trees by recomputing load
//! explicitly per edge, and measure the approximation algorithm against the
//! exact optimum in this degenerate-cost regime.

use dmn_approx::{place_object, ApproxConfig};
use dmn_core::cost::{evaluate_object, UpdatePolicy};
use dmn_core::instance::ObjectWorkload;
use dmn_exact::optimal_placement;
use dmn_graph::dijkstra::apsp;
use dmn_graph::generators;
use dmn_graph::tree::RootedTree;
use dmn_tree::{optimal_tree_general, tree_cost};
use rand::Rng;

use super::{max, mean, rng};
use crate::report::{fmt, Report, Table};

/// Runs E7 and returns its report.
pub fn run() -> Report {
    let mut report = Report::new(
        "E7",
        "ct = 1/bandwidth, cs = 0 reduces the model to total communication load",
    );

    // Identity check on trees: evaluator total == explicit per-edge load.
    let mut r = rng(7_000);
    let mut worst_diff: f64 = 0.0;
    for _ in 0..20 {
        let n = r.random_range(4..=40);
        let mut g = generators::prufer_tree(n, (1.0, 1.0), &mut r);
        // Re-weight edges as 1/bandwidth with bandwidth in 1..=10.
        let edges: Vec<_> = g.edges().to_vec();
        let mut g2 = dmn_graph::Graph::new(n);
        for e in edges {
            let bw = r.random_range(1..=10) as f64;
            g2.add_edge(e.u, e.v, 1.0 / bw);
        }
        g = g2;
        let tree = RootedTree::from_graph(&g, 0);
        let cs = vec![0.0; n];
        let mut w = ObjectWorkload::new(n);
        for v in 0..n {
            w.reads[v] = r.random_range(0..4) as f64;
            if r.random_bool(0.3) {
                w.writes[v] = r.random_range(0..3) as f64;
            }
        }
        if w.total_requests() == 0.0 {
            w.reads[0] = 1.0;
        }
        let sol = optimal_tree_general(&tree, &cs, &w);
        // tree_cost *is* the explicit per-edge accounting; the DP cost must
        // match it exactly on its own output.
        let explicit = tree_cost(&tree, &cs, &w, &sol.copies);
        worst_diff = worst_diff.max((explicit - sol.cost).abs() / (1.0 + sol.cost));
    }
    report.finding(format!(
        "load-model identity on trees: worst relative deviation {worst_diff:.2e} \
         between DP cost and explicit per-link load accounting"
    ));

    // Approximation quality in the load regime (cs = 0).
    let mut t = Table::new(
        "approximation vs exact optimum under ct = 1/bw, cs = 0 (30 seeds, n in 6..=10)",
        &["write share", "mean ratio", "max ratio"],
    );
    let cfg = ApproxConfig::default();
    for &ws in &[0.2, 0.6] {
        let mut ratios = Vec::new();
        for seed in 0..30u64 {
            let mut rr = rng(7_100 + seed);
            let n = 6 + (seed % 5) as usize;
            let g = generators::gnp_connected(n, 0.5, (0.1, 1.0), &mut rr);
            let metric = apsp(&g);
            let cs = vec![0.0; n];
            let mut w = ObjectWorkload::new(n);
            for v in 0..n {
                if rr.random_bool(0.8) {
                    let mass = rr.random_range(1..=3) as f64;
                    if rr.random_bool(ws) {
                        w.writes[v] = mass;
                    } else {
                        w.reads[v] = mass;
                    }
                }
            }
            if w.total_requests() == 0.0 {
                w.reads[0] = 1.0;
            }
            let opt = optimal_placement(&metric, &cs, &w);
            let copies = place_object(&metric, &cs, &w, &cfg);
            let c = evaluate_object(&metric, &cs, &w, &copies, UpdatePolicy::MstMulticast);
            if opt.cost > 1e-9 {
                ratios.push(c.total() / opt.cost);
            }
        }
        t.row(vec![
            format!("{ws:.1}"),
            fmt(mean(&ratios)),
            fmt(max(&ratios)),
        ]);
    }
    report.table(t);
    report.finding(
        "the same algorithm, unchanged, minimizes total communication load when fed \
         the degenerate cost functions — the generalization claimed in Section 1"
            .to_string(),
    );
    report
}
