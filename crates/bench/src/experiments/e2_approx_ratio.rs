//! E2 — Theorem 7: the 3-phase algorithm is a constant-factor
//! approximation.
//!
//! We compare the algorithm's placements against the exact optimum
//! (exhaustive, per-write optimal Steiner updates) on random small
//! networks, sweeping write share and storage scale. Two ratios are
//! reported: the *achievable* cost (the paper's MST-multicast write policy)
//! and the *placement-quality* cost (the same copy set evaluated with
//! optimal update sets).

use dmn_approx::{place_object, ApproxConfig};
use dmn_core::cost::{evaluate_object, UpdatePolicy};
use dmn_exact::optimal_placement;

use super::{max, mean, rng, small_instance};
use crate::report::{fmt, Report, Table};

/// Runs E2 and returns its report.
pub fn run() -> Report {
    let mut report = Report::new(
        "E2",
        "Theorem 7: constant approximation factor on arbitrary networks",
    );
    let mut table = Table::new(
        "total-cost ratio vs exact optimum (40 seeds each, n in 6..=10)",
        &[
            "write share",
            "cs scale",
            "mean (policy)",
            "max (policy)",
            "mean (placement)",
            "max (placement)",
        ],
    );
    let cfg = ApproxConfig::default();
    let mut worst: f64 = 0.0;
    for &write_share in &[0.0, 0.3, 0.7] {
        for &cs_scale in &[0.5, 2.0, 8.0] {
            // Seeds are independent: sweep them on the parallel runner.
            let ratios = crate::runner::par_sweep(&crate::runner::seed_range(0, 40), |seed| {
                let mut r = rng(2_000 + seed);
                let n = 6 + (seed % 5) as usize;
                let (metric, cs, w) = small_instance(n, cs_scale, write_share, &mut r);
                let opt = optimal_placement(&metric, &cs, &w);
                let copies = place_object(&metric, &cs, &w, &cfg);
                let achievable =
                    evaluate_object(&metric, &cs, &w, &copies, UpdatePolicy::MstMulticast);
                let quality =
                    evaluate_object(&metric, &cs, &w, &copies, UpdatePolicy::ExactSteiner);
                assert!(quality.total() + 1e-9 >= opt.cost, "beat the optimum?!");
                (
                    achievable.total() / opt.cost.max(1e-12),
                    quality.total() / opt.cost.max(1e-12),
                )
            });
            let policy_ratios: Vec<f64> = ratios.iter().map(|r| r.0).collect();
            let placement_ratios: Vec<f64> = ratios.iter().map(|r| r.1).collect();
            worst = worst.max(max(&policy_ratios));
            table.row(vec![
                format!("{write_share:.1}"),
                format!("{cs_scale:.1}"),
                fmt(mean(&policy_ratios)),
                fmt(max(&policy_ratios)),
                fmt(mean(&placement_ratios)),
                fmt(max(&placement_ratios)),
            ]);
        }
    }
    report.table(table);
    report.finding(format!(
        "worst observed total-cost ratio = {} — a small constant, far below the \
         (large) worst-case constant the proof composes",
        fmt(worst)
    ));
    report.finding(
        "ratios are largest for write-heavy + cheap-storage mixes, where pruning \
         trades read locality against update traffic"
            .to_string(),
    );
    report
}
