//! E11 (extension) — the dynamic setting the paper situates itself in.
//!
//! The paper's related work develops *online* strategies with constant /
//! polylog competitive ratios (Awerbuch et al.; Maggs et al.). This
//! extension experiment runs the classic count-based replicate/invalidate
//! scheme on sampled request streams and reports its empirical competitive
//! ratio against the static oracle (the paper's algorithm fed the stream's
//! exact frequencies):
//!
//! * on **stationary** streams the static oracle should win — knowing the
//!   frequencies is exactly the static problem this paper solves;
//! * on **phase-shifting** streams the online strategy should catch up or
//!   win, since any fixed placement goes stale.

use dmn_dynamic::migration::MigrationStrategy;
use dmn_dynamic::sim::{simulate, static_cost_on_stream};
use dmn_dynamic::strategy::{CountingStrategy, StaticOracle};
use dmn_dynamic::stream::{empirical_workloads, sample_stream, StreamConfig};
use dmn_graph::dijkstra::apsp;
use dmn_graph::generators;
use dmn_workloads::{WorkloadGen, WorkloadParams};

use super::{mean, rng};
use crate::report::{fmt, Report, Table};

/// Runs E11 and returns its report.
pub fn run() -> Report {
    let mut report = Report::new(
        "E11",
        "extension: online counting strategy vs the static oracle",
    );
    let g = generators::random_geometric(40, 0.25, 10.0, &mut rng(11_000));
    let n = g.num_nodes();
    let metric = apsp(&g);
    let cs: Vec<f64> = (0..n).map(|v| 2.0 + (v % 3) as f64).collect();

    let mut table = Table::new(
        "empirical competitive ratio (cost / static-oracle cost), 10 streams each",
        &[
            "stream",
            "write frac",
            "counting",
            "migration",
            "fixed-single",
        ],
    );
    for (label, phases, shift) in [
        ("stationary", 1usize, 0usize),
        ("shifting (4 phases)", 4, n / 3),
    ] {
        for &wf in &[0.05, 0.4] {
            let mut ratios_counting = Vec::new();
            let mut ratios_migration = Vec::new();
            let mut ratios_fixed = Vec::new();
            for seed in 0..10u64 {
                let gen = WorkloadGen::new(
                    n,
                    WorkloadParams {
                        num_objects: 3,
                        write_fraction: wf,
                        active_fraction: 0.4,
                        base_mass: 60.0,
                        ..Default::default()
                    },
                );
                let workloads = gen.generate(&mut rng(11_100 + seed));
                let stream = sample_stream(
                    &workloads,
                    &StreamConfig {
                        length: 2_000,
                        phases,
                        phase_shift: shift,
                    },
                    &mut rng(11_200 + seed),
                );
                // Oracle sees the realized stream frequencies.
                let emp = empirical_workloads(&stream, 3, n);
                let oracle = StaticOracle::place(&metric, &cs, &emp);
                let oracle_cost = static_cost_on_stream(&metric, &cs, &oracle, &stream);

                // Online: all objects start with a single arbitrary copy.
                let start: Vec<Vec<usize>> = (0..3).map(|x| vec![x % n]).collect();
                let mut counting = CountingStrategy::new(3, n, 4.0);
                let dyn_cost = simulate(&metric, &cs, &start, &stream, &mut counting);
                let mut migration = MigrationStrategy::new(3, n, 3.0);
                let mig_cost = simulate(&metric, &cs, &start, &stream, &mut migration);
                let fixed_cost = static_cost_on_stream(&metric, &cs, &start, &stream);

                ratios_counting.push(dyn_cost.total() / oracle_cost.total());
                ratios_migration.push(mig_cost.total() / oracle_cost.total());
                ratios_fixed.push(fixed_cost.total() / oracle_cost.total());
            }
            table.row(vec![
                label.to_string(),
                format!("{wf:.2}"),
                fmt(mean(&ratios_counting)),
                fmt(mean(&ratios_migration)),
                fmt(mean(&ratios_fixed)),
            ]);
        }
    }
    report.table(table);
    report.finding(
        "the counting strategy stays within a small constant of the informed static \
         placement and beats naive fixed placements; adaptivity matters most on \
         read-heavy shifting streams"
            .to_string(),
    );
    report
}
