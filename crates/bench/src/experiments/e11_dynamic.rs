//! E11 (extension) — the dynamic setting the paper situates itself in.
//!
//! The paper's related work develops *online* strategies with constant /
//! polylog competitive ratios (Awerbuch et al.; Maggs et al.). This
//! extension experiment drives the dynamic↔static bridge: the full online
//! strategy zoo is raced against the static oracle — any registry engine
//! fed the stream's exact frequencies — on stationary, phase-shifting,
//! and adversarial streams, with per-phase ratio tracking:
//!
//! * on **stationary** streams the static oracle should win — knowing the
//!   frequencies is exactly the static problem this paper solves (this is
//!   the `dynamic_ok` CI gate on the perf-smoke scenario);
//! * on **phase-shifting** streams adaptive strategies catch up or win,
//!   since any fixed placement goes stale (visible per phase);
//! * on **adversarial** streams replication investments are destroyed as
//!   soon as they are made — the classic online lower-bound construction;
//! * the **oracle column** is interchangeable: the bridge runs the same
//!   comparison against `greedy-local` (or any other registry engine) as
//!   the offline reference.

use dmn_core::instance::Instance;
use dmn_dynamic::bridge::{compete, StaticOracle};
use dmn_dynamic::strategy::standard_zoo;
use dmn_dynamic::stream::{adversarial_stream, sample_stream, AdversarialConfig, StreamConfig};
use dmn_graph::generators;
use dmn_workloads::{WorkloadGen, WorkloadParams};

use super::{mean, rng};
use crate::report::{fmt, Report, Table};

/// Runs E11 and returns its report.
pub fn run() -> Report {
    let mut report = Report::new(
        "E11",
        "extension: the online strategy zoo vs registry-solved static oracles",
    );
    let g = generators::random_geometric(40, 0.25, 10.0, &mut rng(11_000));
    let n = g.num_nodes();
    let cs: Vec<f64> = (0..n).map(|v| 2.0 + (v % 3) as f64).collect();
    let instance = Instance::builder(g).storage_costs(cs.clone()).build();
    let objects = 3usize;
    let strategy_names: Vec<String> = standard_zoo(objects, &cs, 1)
        .iter()
        .map(|s| s.name().to_string())
        .collect();

    let mut columns = vec!["stream".to_string(), "write frac".to_string()];
    columns.extend(strategy_names.iter().cloned());
    columns.push("worst-phase (counting)".to_string());
    let mut table = Table::new(
        "empirical competitive ratio vs the approx oracle, 10 streams each",
        &columns.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );

    for (label, phases, shift) in [
        ("stationary", 1usize, 0usize),
        ("shifting (4 phases)", 4, n / 3),
    ] {
        for &wf in &[0.05, 0.4] {
            let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); strategy_names.len()];
            let mut worst_phase = Vec::new();
            for seed in 0..10u64 {
                let gen = WorkloadGen::new(
                    n,
                    WorkloadParams {
                        num_objects: objects,
                        write_fraction: wf,
                        active_fraction: 0.4,
                        base_mass: 60.0,
                        ..Default::default()
                    },
                );
                let workloads = gen.generate(&mut rng(11_100 + seed));
                let length = 2_000;
                let stream = sample_stream(
                    &workloads,
                    &StreamConfig {
                        length,
                        phases,
                        phase_shift: shift,
                    },
                    &mut rng(11_200 + seed),
                );
                let initial: Vec<Vec<usize>> = (0..objects).map(|x| vec![x % n]).collect();
                let mut zoo = standard_zoo(objects, &cs, stream.len());
                let comp = compete(
                    &instance,
                    &stream,
                    objects,
                    &StaticOracle::approx(),
                    &mut zoo,
                    &initial,
                    length.div_ceil(phases),
                )
                .expect("approx runs on any network");
                for (i, run) in comp.runs.iter().enumerate() {
                    ratios[i].push(run.ratio);
                }
                worst_phase.push(comp.worst_phase_ratio_of("counting").expect("raced"));
            }
            let mut row = vec![label.to_string(), format!("{wf:.2}")];
            row.extend(ratios.iter().map(|r| fmt(mean(r))));
            row.push(fmt(mean(&worst_phase)));
            table.row(row);
        }
    }
    report.table(table);

    // Adversarial streams: deterministic burst-then-write cycles.
    let mut adv_table = Table::new(
        "adversarial burst-write streams (deterministic), ratio vs approx oracle",
        &{
            let mut c = vec!["burst"];
            c.extend(strategy_names.iter().map(|s| s.as_str()));
            c
        },
    );
    for &burst in &[3usize, 8] {
        let stream = adversarial_stream(
            n,
            &AdversarialConfig {
                length: 2_000,
                burst,
                num_objects: objects,
            },
        );
        let initial: Vec<Vec<usize>> = (0..objects).map(|x| vec![x % n]).collect();
        let mut zoo = standard_zoo(objects, &cs, stream.len());
        let comp = compete(
            &instance,
            &stream,
            objects,
            &StaticOracle::approx(),
            &mut zoo,
            &initial,
            stream.len(),
        )
        .expect("approx runs on any network");
        let mut row = vec![burst.to_string()];
        row.extend(comp.runs.iter().map(|r| fmt(r.ratio)));
        adv_table.row(row);
    }
    report.table(adv_table);

    // The oracle is engine-agnostic: the same stream scored against two
    // different registry references.
    let mut oracle_table = Table::new(
        "bridge: counting ratio under different oracle engines (one stationary stream)",
        &["oracle engine", "oracle cost", "counting ratio"],
    );
    let gen = WorkloadGen::new(
        n,
        WorkloadParams {
            num_objects: objects,
            write_fraction: 0.2,
            active_fraction: 0.4,
            base_mass: 60.0,
            ..Default::default()
        },
    );
    let workloads = gen.generate(&mut rng(11_900));
    let stream = sample_stream(
        &workloads,
        &StreamConfig {
            length: 2_000,
            ..Default::default()
        },
        &mut rng(11_901),
    );
    let initial: Vec<Vec<usize>> = (0..objects).map(|x| vec![x % n]).collect();
    for engine in ["approx", "greedy-local", "sharded:approx"] {
        let oracle = StaticOracle::with_engine(engine).expect("registered");
        let mut zoo = standard_zoo(objects, &cs, stream.len());
        let comp = compete(
            &instance,
            &stream,
            objects,
            &oracle,
            &mut zoo,
            &initial,
            stream.len(),
        )
        .expect("engine runs on this network");
        oracle_table.row(vec![
            engine.to_string(),
            fmt(comp.oracle_cost.total()),
            fmt(comp.ratio_of("counting").expect("raced")),
        ]);
    }
    report.table(oracle_table);

    report.finding(
        "the adaptive strategies stay within a small constant of the informed static \
         placement and beat naive fixed placements on shifting streams (per-phase \
         ratios expose exactly when a fixed placement goes stale); adversarial \
         burst-write cycles are the worst case for counting-style replication; the \
         oracle column is engine-agnostic through the registry bridge"
            .to_string(),
    );
    report
}
