//! E3 — Lemma 8: the algorithm's output is a proper placement with
//! `k1 = 29`, `k2 = 2`.
//!
//! We run the algorithm on large networks (geometric and Internet-like
//! transit–stub topologies) and verify both properness conditions on every
//! produced placement, reporting the observed margins: how close any node
//! comes to the `k1 · max(rw, rs)` proximity bound and any copy pair to the
//! `2 k2 · max(rw, rw)` separation bound.

use dmn_approx::proper::{check_proper, K1, K2};
use dmn_approx::{place_object, ApproxConfig, FlSolverKind};
use dmn_core::radii::RadiusTable;
use dmn_graph::dijkstra::apsp;
use dmn_graph::generators::{self, TransitStubParams};
use dmn_workloads::{WorkloadGen, WorkloadParams};

use super::rng;
use crate::report::{fmt, Report, Table};

/// Runs E3 and returns its report.
pub fn run() -> Report {
    let mut report = Report::new("E3", "Lemma 8: output is proper (k1 = 29, k2 = 2)");
    let mut table = Table::new(
        "properness check on large networks (4 objects each)",
        &[
            "topology",
            "n",
            "violations",
            "tightest proximity",
            "tightest separation",
        ],
    );
    let cfg = ApproxConfig {
        fl_solver: FlSolverKind::MettuPlaxton,
        ..ApproxConfig::default()
    };

    let mut total_viol = 0usize;
    for (name, graph) in [
        (
            "geometric-200",
            generators::random_geometric(200, 0.15, 10.0, &mut rng(31)),
        ),
        (
            "geometric-500",
            generators::random_geometric(500, 0.1, 10.0, &mut rng(32)),
        ),
        (
            "transit-stub-244",
            generators::transit_stub(
                TransitStubParams {
                    transits: 4,
                    stubs_per_transit: 3,
                    nodes_per_stub: 20,
                    ..Default::default()
                },
                &mut rng(33),
            ),
        ),
    ] {
        let n = graph.num_nodes();
        let metric = apsp(&graph);
        let gen = WorkloadGen::new(
            n,
            WorkloadParams {
                num_objects: 4,
                write_fraction: 0.25,
                ..Default::default()
            },
        );
        let objects = gen.generate(&mut rng(34));
        let cs: Vec<f64> = (0..n).map(|v| 2.0 + (v % 5) as f64).collect();

        let mut proximity_margin = f64::INFINITY; // allowed / nearest (>= 1 is proper)
        let mut separation_margin = f64::INFINITY; // dist / required (>= 1 is proper)
        let mut violations = 0usize;
        for w in &objects {
            let copies = place_object(&metric, &cs, w, &cfg);
            let radii = RadiusTable::compute(&metric, &w.request_masses(), w.total_writes(), &cs);
            let rep = check_proper(&metric, &radii, &copies, K1, K2);
            violations += rep.violations.len();
            for v in 0..n {
                let allowed = K1 * radii.max_radius(v);
                if !allowed.is_finite() || allowed == 0.0 {
                    continue;
                }
                let (_, nearest) = metric.nearest_in(v, &copies).expect("non-empty");
                if nearest > 0.0 {
                    proximity_margin = proximity_margin.min(allowed / nearest);
                }
            }
            for (i, &u) in copies.iter().enumerate() {
                for &v2 in &copies[i + 1..] {
                    let required = 2.0 * K2 * radii.write_radius[u].max(radii.write_radius[v2]);
                    if required > 0.0 {
                        separation_margin = separation_margin.min(metric.dist(u, v2) / required);
                    }
                }
            }
        }
        total_viol += violations;
        table.row(vec![
            name.to_string(),
            n.to_string(),
            violations.to_string(),
            if proximity_margin.is_finite() {
                fmt(proximity_margin)
            } else {
                "-".into()
            },
            if separation_margin.is_finite() {
                fmt(separation_margin)
            } else {
                "-".into()
            },
        ]);
    }
    report.table(table);
    report.finding(format!(
        "{total_viol} properness violations across all runs (claim: 0); margins >= 1 \
         show how much slack the k1 = 29 / k2 = 2 constants leave in practice"
    ));
    assert_eq!(total_viol, 0, "Lemma 8 violated!");
    report
}
