//! E16 — Sparse metric closures: cost fidelity and closure-build time of
//! the truncated per-object solve path vs the dense APSP table.
//!
//! The dense path pays an O(n²) metric closure before any placement work;
//! the sparse backend builds one truncated closure per object (clients
//! plus a candidate ball around them) and never materializes the table.
//! On hotspot workloads the balls truncate, so the sparse result may
//! differ: this experiment measures the total-cost ratio on truncating
//! instances across topologies (pinned to the perf-smoke ceiling
//! [`crate::perf_smoke::MAX_SPARSE_COST_RATIO`]) and confirms the
//! full-coverage case — every node a client — reproduces the dense
//! placements exactly, per the bit-identical truncated-closure guarantee.

use dmn_solve::{solvers, MetricBackend, SolveRequest};
use dmn_workloads::{Scenario, TopologyKind, WorkloadParams};

use crate::perf_smoke::MAX_SPARSE_COST_RATIO;
use crate::report::{Report, Table};

/// Truncating rows: hotspot workloads (20% active nodes, locality decay)
/// across the topology families the corpus ships, plus a 1,600-node grid
/// where the dense closure's O(n²) build starts to dominate and the
/// truncated rows pull ahead.
const TRUNCATING: [(&str, TopologyKind, usize); 5] = [
    ("grid", TopologyKind::Grid { rows: 12, cols: 12 }, 144),
    ("gnp", TopologyKind::Gnp, 150),
    ("geometric", TopologyKind::Geometric, 150),
    ("transit-stub", TopologyKind::TransitStub, 150),
    (
        "grid-40x40",
        TopologyKind::Grid { rows: 40, cols: 40 },
        1_600,
    ),
];

fn scenario(name: &str, topology: TopologyKind, nodes: usize, truncating: bool) -> Scenario {
    Scenario {
        name: name.into(),
        topology,
        nodes,
        storage_cost: 4.0,
        workload: WorkloadParams {
            num_objects: 8,
            base_mass: 120.0,
            write_fraction: 0.2,
            // Hotspots get sparser as the network grows (matching the
            // 10k-node scenario's regime, where balls stay local).
            active_fraction: match (truncating, nodes >= 1_000) {
                (false, _) => 1.0,
                (true, false) => 0.2,
                (true, true) => 0.05,
            },
            locality: if truncating { 0.5 } else { 0.0 },
            ..Default::default()
        },
        seed: 16_000 + nodes as u64,
        capacities: None,
        stream: None,
        drift: None,
        faults: None,
        timeline: None,
    }
}

/// A meta counter as a number (0 when absent).
fn meta_count(report: &dmn_solve::SolveReport, key: &str) -> f64 {
    report
        .meta_value(key)
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.0)
}

/// Runs E16 and returns its report.
pub fn run() -> Report {
    let mut report = Report::new(
        "E16",
        "sparse metric closures: truncated per-object solves vs the dense APSP path",
    );
    let approx = solvers::by_name("approx").expect("approx registered");
    let dense_req = SolveRequest::new().max_threads(Some(1));
    let sparse_req = dense_req.clone().metric_backend(MetricBackend::Sparse);

    let mut table = Table::new(
        "hotspot (truncating) workloads, dense vs sparse backend".to_string(),
        &[
            "topology",
            "n",
            "dense cost",
            "sparse cost",
            "ratio",
            "dense metric (ms)",
            "sparse metric (ms)",
            "closure rows",
            "dense wall (ms)",
            "sparse wall (ms)",
        ],
    );
    let mut worst_ratio: f64 = 0.0;
    for (label, topology, nodes) in TRUNCATING {
        let instance = scenario(label, topology, nodes, true).build_instance();
        let dense = approx.solve(&instance, &dense_req);
        let sparse = approx.solve(&instance, &sparse_req);
        let ratio = sparse.cost.total() / dense.cost.total();
        worst_ratio = worst_ratio.max(ratio);
        assert!(
            ratio <= MAX_SPARSE_COST_RATIO,
            "{label}: sparse/dense cost ratio {ratio:.4} breaches the pinned \
             {MAX_SPARSE_COST_RATIO:.2} epsilon"
        );
        table.row(vec![
            label.to_string(),
            instance.num_nodes().to_string(),
            format!("{:.1}", dense.cost.total()),
            format!("{:.1}", sparse.cost.total()),
            format!("{ratio:.4}"),
            format!("{:.2}", dense.metric_build_seconds() * 1e3),
            format!("{:.2}", sparse.metric_build_seconds() * 1e3),
            format!("{:.0}", meta_count(&sparse, "sparse-candidate-rows")),
            format!("{:.1}", dense.wall_seconds * 1e3),
            format!("{:.1}", sparse.wall_seconds * 1e3),
        ]);
    }
    report.table(table);

    // Full coverage: every node is a client, the candidate ball is the
    // whole graph, the truncated closure equals the dense rows bit for
    // bit — the placements must be identical.
    let mut exact = Table::new(
        "full-coverage workloads: sparse must reproduce dense exactly".to_string(),
        &["topology", "n", "cost", "placements identical"],
    );
    for (label, topology, nodes) in [
        ("random-tree", TopologyKind::RandomTree, 80),
        ("grid", TopologyKind::Grid { rows: 9, cols: 9 }, 81),
    ] {
        let instance = scenario(label, topology, nodes, false).build_instance();
        let dense = approx.solve(&instance, &dense_req);
        let sparse = approx.solve(&instance, &sparse_req);
        assert_eq!(
            dense.placement, sparse.placement,
            "{label}: full-coverage sparse placement deviated from dense"
        );
        assert!(
            (dense.cost.total() - sparse.cost.total()).abs() <= 1e-9 * dense.cost.total(),
            "{label}: cost {} vs {}",
            sparse.cost.total(),
            dense.cost.total()
        );
        exact.row(vec![
            label.to_string(),
            instance.num_nodes().to_string(),
            format!("{:.1}", dense.cost.total()),
            "yes".to_string(),
        ]);
    }
    report.table(exact);

    report.finding(format!(
        "truncated candidate balls keep the sparse backend within {worst_ratio:.4}x of the \
         dense solve on hotspot workloads (pinned ceiling {MAX_SPARSE_COST_RATIO:.2}) while \
         replacing the O(n^2) closure with per-object truncated rows; full-coverage \
         workloads reproduce the dense placements bit for bit"
    ));
    report
}
