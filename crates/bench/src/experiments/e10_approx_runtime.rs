//! E10 — Theorem 7: the approximation algorithm runs in polynomial time.
//!
//! We time the full pipeline (metric closure + three phases) on growing
//! random geometric networks and report the growth exponent between
//! consecutive sizes. The dominating terms are the `O(n^2 log n)` metric
//! closure and radius computation plus the phase-1 solver.

use dmn_approx::{place_object, ApproxConfig, FlSolverKind};
use dmn_core::instance::ObjectWorkload;
use dmn_graph::dijkstra::apsp;
use dmn_graph::generators;

use super::{rng, time};
use crate::report::{Report, Table};

/// Runs E10 and returns its report.
pub fn run() -> Report {
    let mut report = Report::new("E10", "Theorem 7: polynomial running time at scale");
    let mut table = Table::new(
        "runtime on random geometric networks (1 object, uniform reads + hotspot writes)",
        &[
            "n",
            "apsp (ms)",
            "place mettu-plaxton (ms)",
            "place local-search (ms)",
            "exponent (MP)",
        ],
    );
    let mut prev: Option<(usize, f64)> = None;
    for &n in &[128usize, 256, 512, 1024] {
        let radius = (8.0 / n as f64).sqrt().clamp(0.05, 0.5);
        let g = generators::random_geometric(n, radius, 10.0, &mut rng(10_000 + n as u64));
        let (metric, apsp_s) = time(|| apsp(&g));
        let mut w = ObjectWorkload::new(n);
        for v in 0..n {
            w.reads[v] = 1.0;
        }
        w.writes[0] = (n as f64) * 0.05;
        let cs: Vec<f64> = (0..n).map(|v| 3.0 + (v % 3) as f64).collect();
        let mp_cfg = ApproxConfig {
            fl_solver: FlSolverKind::MettuPlaxton,
            ..Default::default()
        };
        let (_, mp_s) = time(|| place_object(&metric, &cs, &w, &mp_cfg));
        let ls_cfg = ApproxConfig {
            fl_solver: FlSolverKind::LocalSearch,
            ..Default::default()
        };
        // Local search is the slowest; skip it at the largest size.
        let ls_ms = if n <= 512 {
            let (_, ls_s) = time(|| place_object(&metric, &cs, &w, &ls_cfg));
            format!("{:.1}", ls_s * 1e3)
        } else {
            "-".into()
        };
        let expo = prev
            .map(|(pn, pt)| format!("{:.2}", (mp_s / pt).ln() / (n as f64 / pn as f64).ln()))
            .unwrap_or_else(|| "-".into());
        prev = Some((n, mp_s));
        table.row(vec![
            n.to_string(),
            format!("{:.1}", apsp_s * 1e3),
            format!("{:.1}", mp_s * 1e3),
            ls_ms,
            expo,
        ]);
    }
    report.table(table);
    report.finding(
        "growth stays low-degree polynomial (exponent ~2-3 in n), dominated by the \
         dense metric and radius tables — consistent with Theorem 7's polynomial claim"
            .to_string(),
    );
    report
}
