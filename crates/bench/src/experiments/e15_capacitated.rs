//! E15 — Capacitated placement: the native flow + local-search engine vs
//! the greedy post-hoc repair.
//!
//! `SolveRequest::capacities` was historically honored by one mechanism:
//! solve unconstrained, then greedily unpile over-full nodes
//! (`enforce_capacities`). The `capacitated` engine replaces the patch
//! with native optimization — the better of the greedy repair and the
//! min-cost-flow single-copy seed, refined by a capacity-aware
//! add/drop/swap local search on the full objective. This experiment runs
//! both pipelines on capacitated scenarios across the corpus topologies
//! (grid / tree / expander / transit-stub, hotspot and uniform demand)
//! and reports the cost margin; the native engine must be feasible
//! everywhere and strictly cheaper on every scenario here (the CI smoke
//! gate pins the weaker "never worse" bound on every run).

use dmn_solve::{solvers, SolveRequest};
use dmn_workloads::{CapacitySpec, Scenario, TopologyKind, WorkloadParams};

use crate::report::{fmt, Report, Table};

/// The measured scenarios: corpus-style capacitated workloads where the
/// greedy repair visibly overpays.
fn scenarios() -> Vec<Scenario> {
    let build = |name: &str,
                 topology: TopologyKind,
                 nodes: usize,
                 seed: u64,
                 per_node: usize,
                 active: f64,
                 locality: f64| Scenario {
        name: name.into(),
        topology,
        nodes,
        storage_cost: 4.0,
        workload: WorkloadParams {
            num_objects: 8,
            base_mass: 120.0,
            write_fraction: 0.2,
            active_fraction: active,
            locality,
            ..Default::default()
        },
        seed,
        capacities: Some(CapacitySpec::Uniform { per_node }),
        stream: None,
        drift: None,
        faults: None,
        timeline: None,
    };
    vec![
        build(
            "grid-hotspot-cap2",
            TopologyKind::Grid { rows: 8, cols: 8 },
            64,
            11,
            2,
            0.4,
            0.6,
        ),
        build(
            "tree-hotspot-cap1",
            TopologyKind::RandomTree,
            48,
            19,
            1,
            0.4,
            0.6,
        ),
        build(
            "expander-uniform-cap2",
            TopologyKind::Gnp,
            48,
            23,
            2,
            1.0,
            0.0,
        ),
        build(
            "transit-stub-hotspot-cap2",
            TopologyKind::TransitStub,
            48,
            31,
            2,
            0.5,
            0.5,
        ),
    ]
}

/// Runs E15 and returns its report.
pub fn run() -> Report {
    let mut report = Report::new(
        "E15",
        "capacitated placement: native flow + local-search engine vs greedy post-hoc repair",
    );
    let mut table = Table::new(
        "uniform per-node copy capacities; repair = approx + enforce_capacities".to_string(),
        &[
            "scenario",
            "nodes",
            "cap",
            "repair",
            "flow seed",
            "capacitated",
            "margin",
            "moves",
            "feasible",
        ],
    );
    let approx = solvers::by_name("approx").expect("registered");
    let native = solvers::by_name("capacitated").expect("registered");
    let mut margins = Vec::new();
    for scenario in scenarios() {
        let instance = scenario.build_instance();
        let n = instance.num_nodes();
        let cap = scenario
            .capacity_vector(n)
            .expect("E15 scenarios are capacitated");
        let req = SolveRequest::new().capacities(cap.clone());
        let repaired = approx.solve(&instance, &req);
        let capacitated = native.solve(&instance, &req);
        let stats = capacitated.capacity.expect("capacity stats reported");
        let feasible = dmn_approx::respects_capacities(&capacitated.placement, &cap);
        assert!(
            feasible,
            "{}: native engine must be feasible",
            scenario.name
        );
        assert!(
            (stats.repair_cost - repaired.cost.total()).abs() < 1e-9,
            "{}: repair baselines disagree",
            scenario.name
        );
        assert!(
            capacitated.cost.total() < repaired.cost.total(),
            "{}: the native engine must strictly beat the repair ({} vs {})",
            scenario.name,
            capacitated.cost.total(),
            repaired.cost.total()
        );
        margins.push(stats.margin_vs_repair);
        table.row(vec![
            scenario.name.clone(),
            n.to_string(),
            cap[0].to_string(),
            fmt(repaired.cost.total()),
            stats.flow_seed_cost.map_or("-".into(), fmt),
            fmt(capacitated.cost.total()),
            format!("{:.1}%", stats.margin_vs_repair * 100.0),
            stats.moves.to_string(),
            "yes".into(),
        ]);
    }
    report.table(table);
    let min = margins.iter().copied().fold(f64::INFINITY, f64::min);
    let max = margins.iter().copied().fold(0.0f64, f64::max);
    report.finding(format!(
        "the native capacitated engine is feasible on every scenario and strictly beats \
         the greedy repair everywhere, saving {:.1}%..{:.1}% of total cost (margin also \
         reported per-solve in SolveReport::capacity)",
        min * 100.0,
        max * 100.0
    ));
    report
}
