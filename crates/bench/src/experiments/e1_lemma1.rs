//! E1 — Lemma 1: restricted placements lose at most a factor 4.
//!
//! Paper claim: `C^OPT_W <= 4 · C^OPT`. We compute the exact optimum (per-
//! write Steiner updates) and the exact optimal *restricted* placement on
//! random small networks and report the ratio distribution; additionally we
//! run the constructive Lemma-1 transformation on the optimal copy set and
//! verify the resulting MST-policy cost stays within the factor-4 envelope.

use dmn_core::cost::{evaluate_object, UpdatePolicy};
use dmn_core::restricted::{is_restricted, restrict_placement};
use dmn_exact::{optimal_placement, optimal_restricted};

use super::{max, mean, rng, small_instance};
use crate::report::{fmt, Report, Table};

/// Runs E1 and returns its report.
pub fn run() -> Report {
    let mut report = Report::new("E1", "Lemma 1: C^OPT_W <= 4 C^OPT");
    let mut table = Table::new(
        "restricted-vs-optimal ratio by write share (60 seeds each, n in 5..=9)",
        &[
            "write share",
            "mean ratio",
            "max ratio",
            "paper bound",
            "constructive max",
        ],
    );

    let mut worst_overall: f64 = 0.0;
    for &write_share in &[0.2, 0.5, 0.8] {
        let mut ratios = Vec::new();
        let mut constructive = Vec::new();
        for seed in 0..60u64 {
            let mut r = rng(1_000 + seed);
            let n = 5 + (seed % 5) as usize;
            let (metric, cs, w) = small_instance(n, 1.5, write_share, &mut r);
            let opt = optimal_placement(&metric, &cs, &w);
            let rst = optimal_restricted(&metric, &cs, &w);
            assert!(rst.cost + 1e-9 >= opt.cost, "restricted beat optimal");
            ratios.push(rst.cost / opt.cost.max(1e-12));

            // Constructive transformation applied to the optimal copy set.
            let t = restrict_placement(&metric, &w, &opt.copies);
            assert!(is_restricted(&metric, &w, &t.copies));
            let c = evaluate_object(&metric, &cs, &w, &t.copies, UpdatePolicy::MstMulticast);
            constructive.push(c.total() / opt.cost.max(1e-12));
        }
        worst_overall = worst_overall.max(max(&ratios)).max(max(&constructive));
        table.row(vec![
            format!("{write_share:.1}"),
            fmt(mean(&ratios)),
            fmt(max(&ratios)),
            "4.0".into(),
            fmt(max(&constructive)),
        ]);
    }
    report.table(table);
    report.finding(format!(
        "worst observed restricted/optimal ratio = {} (paper bound: 4.0) — bound holds with slack",
        fmt(worst_overall)
    ));
    assert!(worst_overall <= 4.0 + 1e-9, "Lemma 1 violated empirically!");
    report
}
