//! E5 — Theorem 13: running time `O(|X| · |V| · diam(T) · log(deg(T)))`.
//!
//! We time the read-only tuple algorithm on tree shapes that stress the
//! bound differently — paths (diam = n), balanced binary trees
//! (diam = log n), stars (diam = 2, deg = n) and uniform random trees —
//! and report the time normalized by `n · diam · log2(deg)`. A roughly
//! constant normalized column means the implementation matches the bound;
//! the fitted growth exponent of the raw time doubles as a sanity check.

use dmn_core::instance::ObjectWorkload;
use dmn_graph::bfs::tree_hop_diameter;
use dmn_graph::generators;
use dmn_graph::tree::RootedTree;
use dmn_graph::Graph;
use dmn_tree::{optimal_tree_general, optimal_tree_read_only};
use rand::Rng;

use super::{rng, time};
use crate::report::{Report, Table};

fn workload(n: usize, writes: bool, r: &mut impl Rng) -> ObjectWorkload {
    let mut w = ObjectWorkload::new(n);
    for v in 0..n {
        w.reads[v] = r.random_range(1..5) as f64;
        if writes && r.random_bool(0.2) {
            w.writes[v] = r.random_range(1..4) as f64;
        }
    }
    w
}

fn shape(name: &str, n: usize, r: &mut impl Rng) -> Graph {
    match name {
        "path" => generators::path(n, |_| 1.0),
        "binary" => generators::kary_tree(n, 2, |_| 1.0),
        "star" => generators::star(n, |_| 1.0),
        "random" => generators::prufer_tree(n, (1.0, 4.0), r),
        _ => unreachable!(),
    }
}

/// Runs E5 and returns its report.
pub fn run() -> Report {
    let mut report = Report::new(
        "E5",
        "Theorem 13: O(n · diam · log deg) per object on trees",
    );
    let mut table = Table::new(
        "read-only tuple algorithm runtime by tree shape",
        &[
            "shape",
            "n",
            "diam",
            "deg",
            "time (ms)",
            "ns / (n·diam·log2 deg)",
            "general (ms)",
        ],
    );
    let mut r = rng(5_000);
    for shape_name in ["path", "binary", "star", "random"] {
        let mut prev: Option<(usize, f64)> = None;
        let mut exponent = String::new();
        for &n in &[256usize, 512, 1024, 2048] {
            // Paths are the quadratic worst case; cap them lower.
            if shape_name == "path" && n > 1024 {
                continue;
            }
            let g = shape(shape_name, n, &mut r);
            let tree = RootedTree::from_graph(&g, 0);
            let diam = tree_hop_diameter(&g).max(1);
            let deg = g.max_degree().max(2);
            let w = workload(n, false, &mut r);
            let cs: Vec<f64> = (0..n).map(|_| 3.0).collect();
            let (_, secs) = time(|| optimal_tree_read_only(&tree, &cs, &w));
            let wg = workload(n, true, &mut r);
            let (_, gsecs) = time(|| optimal_tree_general(&tree, &cs, &wg));
            let norm = secs * 1e9 / (n as f64 * diam as f64 * (deg as f64).log2().max(1.0));
            if let Some((pn, pt)) = prev {
                let e = (secs / pt).ln() / (n as f64 / pn as f64).ln();
                exponent = format!("{e:.2}");
            }
            prev = Some((n, secs));
            table.row(vec![
                shape_name.to_string(),
                n.to_string(),
                diam.to_string(),
                deg.to_string(),
                format!("{:.2}", secs * 1e3),
                format!("{norm:.1}"),
                format!("{:.2}", gsecs * 1e3),
            ]);
        }
        report.finding(format!(
            "{shape_name}: last observed growth exponent in n = {exponent} \
             (bound predicts 2.0 for paths, ~1.0 for bounded-diameter shapes)"
        ));
    }
    report.table(table);
    report
}
