//! E4 — Theorem 13 / Section 3.2: the tree algorithms are optimal.
//!
//! Three cross-validations:
//!
//! 1. general tuple DP vs brute force (reads + writes, n <= 13);
//! 2. read-only tuple DP vs the independent reference DP (n up to 400);
//! 3. general DP vs read-only DP on write-free workloads (must coincide).

use dmn_core::instance::ObjectWorkload;
use dmn_graph::generators;
use dmn_graph::tree::RootedTree;
use dmn_tree::{brute_force_tree, optimal_tree_dp, optimal_tree_general, optimal_tree_read_only};
use rand::Rng;

use super::{max, rng};
use crate::report::{Report, Table};

/// Runs E4 and returns its report.
pub fn run() -> Report {
    let mut report = Report::new("E4", "Theorem 13 / Sec 3.2: tree placements are optimal");

    // (1) general vs brute force.
    let mut t1 = Table::new(
        "general tuple DP vs exhaustive optimum (reads+writes)",
        &["trees", "n range", "max |rel. diff|", "mismatches"],
    );
    let mut worst: f64 = 0.0;
    let mut mismatches = 0usize;
    let trials = 150usize;
    let mut r = rng(4_000);
    for _ in 0..trials {
        let n = r.random_range(3..=13);
        let g = generators::prufer_tree(n, (1.0, 7.0), &mut r);
        let root = r.random_range(0..n);
        let tree = RootedTree::from_graph(&g, root);
        let cs: Vec<f64> = (0..n).map(|_| r.random_range(0.0..9.0)).collect();
        let mut w = ObjectWorkload::new(n);
        for v in 0..n {
            if r.random_bool(0.7) {
                w.reads[v] = r.random_range(0..5) as f64;
            }
            if r.random_bool(0.4) {
                w.writes[v] = r.random_range(0..4) as f64;
            }
        }
        if w.total_requests() == 0.0 {
            w.reads[0] = 1.0;
        }
        let gen = optimal_tree_general(&tree, &cs, &w);
        let bf = brute_force_tree(&tree, &cs, &w);
        let rel = (gen.cost - bf.cost).abs() / (1.0 + bf.cost);
        worst = worst.max(rel);
        if rel > 1e-6 {
            mismatches += 1;
        }
    }
    t1.row(vec![
        trials.to_string(),
        "3..=13".into(),
        format!("{worst:.2e}"),
        mismatches.to_string(),
    ]);
    report.table(t1);
    assert_eq!(mismatches, 0, "tree general DP mismatch vs brute force");

    // (2) read-only tuple DP vs reference DP at larger n.
    let mut t2 = Table::new(
        "read-only tuple DP vs reference DP (candidate-nearest-copy)",
        &["n", "trees", "max |rel. diff|"],
    );
    for &n in &[50usize, 100, 200, 400] {
        let mut diffs = Vec::new();
        for seed in 0..5u64 {
            let mut r = rng(4_100 + seed);
            let g = generators::prufer_tree(n, (1.0, 8.0), &mut r);
            let tree = RootedTree::from_graph(&g, 0);
            let cs: Vec<f64> = (0..n).map(|_| r.random_range(0.5..10.0)).collect();
            let mut w = ObjectWorkload::new(n);
            for v in 0..n {
                w.reads[v] = r.random_range(0..4) as f64;
            }
            if w.total_requests() == 0.0 {
                w.reads[0] = 1.0;
            }
            let tp = optimal_tree_read_only(&tree, &cs, &w);
            let dp = optimal_tree_dp(&tree, &cs, &w);
            diffs.push((tp.cost - dp.cost).abs() / (1.0 + dp.cost));
        }
        t2.row(vec![
            n.to_string(),
            "5".into(),
            format!("{:.2e}", max(&diffs)),
        ]);
        assert!(
            max(&diffs) < 1e-6,
            "tuple vs reference DP mismatch at n={n}"
        );
    }
    report.table(t2);

    // (3) general DP on write-free workloads equals read-only algorithms.
    let mut t3 = Table::new(
        "general DP reduces to read-only case when W = 0",
        &["n", "trees", "max |rel. diff| vs read-only tuple DP"],
    );
    for &n in &[30usize, 120] {
        let mut diffs = Vec::new();
        for seed in 0..5u64 {
            let mut r = rng(4_200 + seed);
            let g = generators::prufer_tree(n, (1.0, 5.0), &mut r);
            let tree = RootedTree::from_graph(&g, 0);
            let cs: Vec<f64> = (0..n).map(|_| r.random_range(0.5..7.0)).collect();
            let mut w = ObjectWorkload::new(n);
            for v in 0..n {
                w.reads[v] = r.random_range(0..3) as f64;
            }
            if w.total_requests() == 0.0 {
                w.reads[0] = 1.0;
            }
            let gen = optimal_tree_general(&tree, &cs, &w);
            let tp = optimal_tree_read_only(&tree, &cs, &w);
            diffs.push((gen.cost - tp.cost).abs() / (1.0 + tp.cost));
        }
        t3.row(vec![
            n.to_string(),
            "5".into(),
            format!("{:.2e}", max(&diffs)),
        ]);
    }
    report.table(t3);
    report.finding(format!(
        "all three solver pairs agree to within numerical tolerance (worst {worst:.2e}); \
         the paper's optimality claims hold on every sampled instance"
    ));
    report
}
