//! The per-claim experiment suite (DESIGN.md §5).
//!
//! Each submodule measures one quantitative claim of the paper and returns
//! a [`crate::Report`]. The `experiments` binary dispatches on experiment
//! ids (`e1`..`e16`, `all`).

pub mod e10_approx_runtime;
pub mod e11_dynamic;
pub mod e12_extensions;
pub mod e13_shard_scaling;
pub mod e14_phase1_scaling;
pub mod e15_capacitated;
pub mod e16_sparse_metric;
pub mod e1_lemma1;
pub mod e2_approx_ratio;
pub mod e3_properness;
pub mod e4_tree_optimality;
pub mod e5_tree_runtime;
pub mod e6_write_sweep;
pub mod e7_load_model;
pub mod e8_phase_ablation;
pub mod e9_fl_ablation;

use dmn_core::instance::ObjectWorkload;
use dmn_graph::dijkstra::apsp;
use dmn_graph::{generators, Metric};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::Report;

/// Runs one experiment by id; `all` runs everything. Returns the reports.
pub fn run(id: &str) -> Vec<Report> {
    match id {
        "e1" => vec![e1_lemma1::run()],
        "e2" => vec![e2_approx_ratio::run()],
        "e3" => vec![e3_properness::run()],
        "e4" => vec![e4_tree_optimality::run()],
        "e5" => vec![e5_tree_runtime::run()],
        "e6" => vec![e6_write_sweep::run()],
        "e7" => vec![e7_load_model::run()],
        "e8" => vec![e8_phase_ablation::run()],
        "e9" => vec![e9_fl_ablation::run()],
        "e10" => vec![e10_approx_runtime::run()],
        "e11" => vec![e11_dynamic::run()],
        "e12" => vec![e12_extensions::run()],
        "e13" => vec![e13_shard_scaling::run()],
        "e14" => vec![e14_phase1_scaling::run()],
        "e15" => vec![e15_capacitated::run()],
        "e16" => vec![e16_sparse_metric::run()],
        "all" => vec![
            e1_lemma1::run(),
            e2_approx_ratio::run(),
            e3_properness::run(),
            e4_tree_optimality::run(),
            e5_tree_runtime::run(),
            e6_write_sweep::run(),
            e7_load_model::run(),
            e8_phase_ablation::run(),
            e9_fl_ablation::run(),
            e10_approx_runtime::run(),
            e11_dynamic::run(),
            e12_extensions::run(),
            e13_shard_scaling::run(),
            e14_phase1_scaling::run(),
            e15_capacitated::run(),
            e16_sparse_metric::run(),
        ],
        other => panic!("unknown experiment id: {other} (use e1..e16 or all)"),
    }
}

/// Deterministic RNG for an experiment/seed pair.
pub fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// A random small validation instance: connected G(n, p) network with
/// integer edge costs, storage costs scaled by `cs_scale`, and a mixed
/// workload with roughly `write_share` of the request mass as writes.
pub fn small_instance(
    n: usize,
    cs_scale: f64,
    write_share: f64,
    r: &mut ChaCha8Rng,
) -> (Metric, Vec<f64>, ObjectWorkload) {
    let p = 0.4;
    let g = generators::gnp_connected(n, p, (1.0, 6.0), r);
    let metric = apsp(&g);
    let cs: Vec<f64> = (0..n)
        .map(|_| cs_scale * r.random_range(1..=4) as f64)
        .collect();
    let mut w = ObjectWorkload::new(n);
    for v in 0..n {
        if r.random_bool(0.8) {
            let mass = r.random_range(1..=4) as f64;
            if r.random_bool(write_share.clamp(0.0, 1.0)) {
                w.writes[v] = mass;
            } else {
                w.reads[v] = mass;
            }
        }
    }
    if w.total_requests() == 0.0 {
        w.reads[0] = 1.0;
    }
    (metric, cs, w)
}

/// Wall-clock seconds of a closure.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = std::time::Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

/// Mean of a slice (0 for empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Maximum of a slice (0 for empty).
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_instance_is_valid() {
        let mut r = rng(1);
        let (m, cs, w) = small_instance(8, 2.0, 0.4, &mut r);
        assert_eq!(m.len(), 8);
        assert_eq!(cs.len(), 8);
        assert!(w.validate().is_ok());
        m.check_axioms(1e-9).unwrap();
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(max(&[1.0, 3.0, 2.0]), 3.0);
        assert_eq!(mean(&[]), 0.0);
    }
}
