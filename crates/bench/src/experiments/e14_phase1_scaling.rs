//! E14 — Phase-1 scaling: the incremental local search vs the seed
//! implementation as the network grows.
//!
//! Phase 1 (the UFL solve) dominates the wall time of the three-phase
//! algorithm. The incremental fast path prices every add/drop/swap in one
//! pass over the clients via nearest/second-nearest assignment tables
//! instead of the seed's from-scratch `O(|clients| · |open|)` scan per
//! candidate, so its advantage grows with both the node count and the
//! open-set size. This experiment measures, on random geometric networks
//! of increasing size: the seed local search (up to the size where it is
//! still tolerable), the incremental search (identical placements —
//! asserted), the Mettu–Plaxton warm start, and plain Mettu–Plaxton,
//! reporting wall clock, speedup, and the search counters.

use dmn_facility::{
    local_search, local_search_reference, local_search_warm_in, mettu_plaxton, FlInstance,
    FlWorkspace, LocalSearchConfig,
};
use dmn_graph::dijkstra::apsp;
use dmn_graph::generators;
use rand::Rng;

use super::{rng, time};
use crate::report::{Report, Table};

/// Node counts swept; the seed reference runs only up to
/// [`MAX_REFERENCE_NODES`] (it is quartic-ish in practice).
const SIZES: [usize; 4] = [50, 100, 200, 400];

/// Largest size the from-scratch reference is timed at.
const MAX_REFERENCE_NODES: usize = 200;

/// Runs E14 and returns its report.
pub fn run() -> Report {
    let mut report = Report::new(
        "E14",
        "phase-1 scaling: incremental assignment-table local search vs the seed implementation",
    );
    let cfg = LocalSearchConfig::default();
    let mut ws = FlWorkspace::new();
    let mut table = Table::new(
        "random geometric networks, per-size FL solve (one object)".to_string(),
        &[
            "n",
            "seed (ms)",
            "incr (ms)",
            "speedup",
            "moves",
            "cands",
            "warm (ms)",
            "warm moves",
            "mp (ms)",
            "warm/incr cost",
        ],
    );
    let mut speedups = Vec::new();
    for (i, &n) in SIZES.iter().enumerate() {
        let mut r = rng(14_000 + i as u64);
        let g = generators::random_geometric(n, (40.0 / n as f64).sqrt().min(0.9), 10.0, &mut r);
        let metric = apsp(&g);
        let open: Vec<f64> = (0..n).map(|_| r.random_range(1.0..8.0)).collect();
        let demand: Vec<f64> = (0..n).map(|_| r.random_range(0.0..3.0)).collect();
        let inst = FlInstance::new(&metric, open, demand);

        let (incr, incr_s) = time(|| ws.local_search(&inst, &cfg));
        let incr_stats = ws.last_stats();
        let (warm, warm_s) = time(|| local_search_warm_in(&mut ws, &inst, &cfg));
        let warm_stats = ws.last_stats();
        let (mp, mp_s) = time(|| mettu_plaxton(&inst));
        assert!(
            warm.cost <= mp.cost + 1e-9,
            "search must not hurt the start"
        );
        assert_eq!(
            local_search(&inst, &cfg).open,
            incr.open,
            "workspace and one-shot paths agree"
        );

        let (seed_cell, speedup_cell) = if n <= MAX_REFERENCE_NODES {
            let (seed, seed_s) = time(|| local_search_reference(&inst, &cfg));
            assert_eq!(seed.open, incr.open, "n = {n}: fast path diverged");
            let speedup = seed_s / incr_s.max(1e-12);
            speedups.push(speedup);
            (format!("{:.1}", seed_s * 1e3), format!("{speedup:.1}x"))
        } else {
            ("-".to_string(), "-".to_string())
        };
        table.row(vec![
            n.to_string(),
            seed_cell,
            format!("{:.1}", incr_s * 1e3),
            speedup_cell,
            incr_stats.moves.to_string(),
            incr_stats.candidates.to_string(),
            format!("{:.1}", warm_s * 1e3),
            warm_stats.moves.to_string(),
            format!("{:.2}", mp_s * 1e3),
            format!("{:.4}", warm.cost / incr.cost.max(1e-12)),
        ]);
    }
    report.table(table);
    let min_speedup = speedups.iter().copied().fold(f64::INFINITY, f64::min);
    report.finding(format!(
        "identical placements at every measured size; the incremental search is at least \
         {min_speedup:.1}x faster than the seed implementation (growing with n and the \
         open-set size), and the Mettu–Plaxton warm start cuts the accepted-move count \
         further at matching quality"
    ));
    report
}
