//! Deterministic parallel sweep runner.
//!
//! Experiments repeat a closure over many seeds; the work items are
//! independent, so they run through the shared order-preserving thread
//! pool in [`dmn_core::parallel`]. Results are returned **in seed order**
//! regardless of completion order, so parallel and sequential runs of an
//! experiment produce byte-identical reports.

use dmn_core::parallel::par_map;

/// Runs `f(seed)` for every seed in `seeds` in parallel and returns the
/// results in input order. Falls back to sequential execution for tiny
/// inputs.
pub fn par_sweep<T, F>(seeds: &[u64], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    par_map(seeds, |&s| f(s))
}

/// Convenience: seeds `base..base + count`.
pub fn seed_range(base: u64, count: u64) -> Vec<u64> {
    (base..base + count).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_seed_order() {
        let seeds = seed_range(10, 32);
        let out = par_sweep(&seeds, |s| s * 2);
        assert_eq!(out, seeds.iter().map(|s| s * 2).collect::<Vec<_>>());
    }

    #[test]
    fn matches_sequential_execution() {
        let seeds = seed_range(0, 17);
        let par = par_sweep(&seeds, |s| (s as f64).sqrt());
        let seq: Vec<f64> = seeds.iter().map(|&s| (s as f64).sqrt()).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u64> = vec![];
        assert!(par_sweep(&empty, |s| s).is_empty());
        assert_eq!(par_sweep(&[7], |s| s + 1), vec![8]);
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Heavier work for some seeds; order must still be preserved.
        let seeds = seed_range(0, 12);
        let out = par_sweep(&seeds, |s| {
            let mut acc = 0u64;
            for i in 0..(s % 4) * 100_000 {
                acc = acc.wrapping_add(i);
            }
            (s, acc)
        });
        for (i, (s, _)) in out.iter().enumerate() {
            assert_eq!(*s, seeds[i]);
        }
    }
}
