//! Chaos replay: the server under a seeded fault schedule.
//!
//! Where [`crate::server_bench`] proves the placement server is *correct*
//! under load, this harness proves it is *robust* under failure. A pinned
//! [`FaultPlan`] is armed process-wide and the replay drives the server
//! through every failure class the resilience layer claims to absorb:
//!
//! * an **injected solver panic** (`solve.phase1`) — the re-solve worker
//!   must catch it, keep the last good epoch live, and retry;
//! * a **stalled re-solve** (`server.resolve` delay past the watchdog
//!   deadline) — the attempt must be abandoned and counted as a timeout;
//! * an **event flood** (`event.apply`) — the bounded delta queue must
//!   shed oldest and keep serving;
//! * a **malformed-client burst** over a live TCP connection (plus
//!   injected `tcp.read` transients) — every hostile line answered
//!   in-band, the listener still healthy afterwards.
//!
//! Throughout, lookups must never return an inconsistent answer (the only
//! tolerated error is a transiently parked object, exactly as in the
//! clean replay), recovery must complete within a bounded wall-clock
//! budget, and — once the schedule is drained — every settled snapshot
//! must cost exactly what a from-scratch solve of the drifted instance
//! costs. The perf-smoke harness runs this on the pinned scenario and
//! gates CI on [`ChaosOutcome::gate`] (`chaos_ok`).

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Instant;

use dmn_core::faults::{self, FaultAction, FaultPlan, FaultSpec};
use dmn_core::telemetry;
use dmn_json::Json;
use dmn_server::{tcp, Event, ResilienceConfig, ServerConfig, ServerError, ServerHandle};
use dmn_solve::solvers;
use dmn_workloads::{sample_trace, Scenario, TraceConfig, TraceOp};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::server_bench::SwapCheck;

/// Post-recovery replay segments; each ends in a settle + from-scratch
/// cost comparison (the proof that chaos left no corrupt state behind).
pub const CHAOS_SEGMENTS: usize = 2;

/// Floor of the wall-clock recovery budget. The actual budget scales
/// with the calibrated watchdog deadline (the scheduled stall alone
/// costs one watchdog window): `floor + 6 * watchdog`. Bounded recovery
/// means bounded relative to the faults induced, but a hang is a hang.
pub const CHAOS_RECOVERY_BUDGET_FLOOR_SECONDS: f64 = 10.0;

/// Storm rounds before the harness gives up waiting for recovery.
const MAX_STORM_ROUNDS: u32 = 16;

/// Lookups issued per storm round while the fault schedule is live.
const STORM_LOOKUPS_PER_ROUND: u64 = 64;

/// The default seeded schedule: one solver panic, one stalled re-solve
/// (`stall_millis` must exceed the harness's watchdog deadline), one
/// 2000-event flood, and two wire-level transients — every class exactly
/// once-ish, all deterministic in hit order.
pub fn default_chaos_plan(seed: u64, stall_millis: u64) -> FaultPlan {
    FaultPlan::new(
        seed ^ 0xC4A0_5EED,
        vec![
            FaultSpec::once(faults::points::SOLVE_PHASE1, FaultAction::Panic),
            FaultSpec::after(
                faults::points::SERVER_RESOLVE,
                FaultAction::DelayMillis(stall_millis),
                1,
            ),
            FaultSpec::after(
                faults::points::EVENT_APPLY,
                FaultAction::FloodEvents(2000),
                1,
            ),
            FaultSpec {
                times: 2,
                ..FaultSpec::once(faults::points::TCP_READ, FaultAction::TransientError)
            },
        ],
    )
}

/// Deterministic hostile lines for the malformed-client burst: every one
/// must be answered in-band with `ok: false`.
fn malformed_corpus() -> Vec<String> {
    let mut corpus: Vec<String> = [
        "not json at all",
        r#"{"op":"lookup","object":"#,
        r#"{"op":42}"#,
        r#"[1,2,3]"#,
        r#"{"noop":"lookup"}"#,
        r#"{"op":"frobnicate"}"#,
        r#"{"op":"lookup","object":"zero","node":[]}"#,
        r#"{"op":"delta","object":0,"node":999999,"read_delta":1.0}"#,
        r#"{"op":"node-down","node":-1}"#,
        "null",
    ]
    .into_iter()
    .map(str::to_string)
    .collect();
    corpus.push("[".repeat(2_000));
    corpus
}

/// Measurements of one chaos replay.
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// Storm rounds (delta + lookups + forced resolve) until recovery.
    pub storm_rounds: u32,
    /// `solve.phase1` faults that fired (injected solver panics).
    pub solver_panics: u64,
    /// `server.resolve` faults that fired (injected solve stalls).
    pub stalled_resolves: u64,
    /// `event.apply` faults that fired (injected event floods).
    pub event_floods: u64,
    /// `tcp.read` faults that fired (injected wire transients).
    pub wire_faults: u64,
    /// Failed re-solve attempts the health block recorded.
    pub resolve_failures: u64,
    /// Watchdog-abandoned attempts among those failures.
    pub watchdog_timeouts: u64,
    /// Deltas the bounded queue shed under the flood.
    pub shed_deltas: u64,
    /// Hostile lines sent over the live TCP connection.
    pub malformed_lines: u64,
    /// Hostile lines answered in-band with `ok: false`.
    pub malformed_rejected: u64,
    /// A clean `status` round-trip succeeded right after the burst.
    pub wire_recovered: bool,
    /// Wall seconds from arming the schedule to the first healthy epoch
    /// published after it.
    pub recovery_seconds: f64,
    /// The run's recovery budget
    /// ([`CHAOS_RECOVERY_BUDGET_FLOOR_SECONDS`] plus six calibrated
    /// watchdog windows).
    pub recovery_budget_seconds: f64,
    /// The pipeline healed (no consecutive failures, a fresh epoch)
    /// within the budget.
    pub recovered: bool,
    /// Lookups issued (storm + post-recovery replay).
    pub lookups: u64,
    /// Lookups that hit a transiently parked object (tolerated).
    pub parked_lookups: u64,
    /// Lookups that failed any other way (never tolerated).
    pub inconsistent_lookups: u64,
    /// Re-solves the server completed over the whole run.
    pub resolves: u64,
    /// Epoch after the run.
    pub final_epoch: u64,
    /// Post-recovery per-segment swap comparisons.
    pub swap_checks: Vec<SwapCheck>,
    /// Every post-recovery swap cost equals the from-scratch solve of
    /// the drifted instance within 1e-9 (relative).
    pub cost_matches_scratch: bool,
}

impl ChaosOutcome {
    /// The `chaos_ok` CI gate: every fault class fired, every one was
    /// absorbed, nothing served was wrong, and the healed server is
    /// bit-for-bit as good as a from-scratch solve.
    pub fn gate(&self) -> bool {
        self.solver_panics >= 1
            && self.stalled_resolves >= 1
            && self.event_floods >= 1
            && self.wire_faults >= 1
            && self.resolve_failures >= 2
            && self.watchdog_timeouts >= 1
            && self.shed_deltas > 0
            && self.malformed_lines > 0
            && self.malformed_rejected == self.malformed_lines
            && self.wire_recovered
            && self.recovered
            && self.inconsistent_lookups == 0
            && self.cost_matches_scratch
    }

    /// The artifact section recorded under `chaos` in `BENCH_ci.json`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("storm_rounds", Json::Num(self.storm_rounds as f64)),
            ("solver_panics", Json::Num(self.solver_panics as f64)),
            ("stalled_resolves", Json::Num(self.stalled_resolves as f64)),
            ("event_floods", Json::Num(self.event_floods as f64)),
            ("wire_faults", Json::Num(self.wire_faults as f64)),
            ("resolve_failures", Json::Num(self.resolve_failures as f64)),
            (
                "watchdog_timeouts",
                Json::Num(self.watchdog_timeouts as f64),
            ),
            ("shed_deltas", Json::Num(self.shed_deltas as f64)),
            ("malformed_lines", Json::Num(self.malformed_lines as f64)),
            (
                "malformed_rejected",
                Json::Num(self.malformed_rejected as f64),
            ),
            ("wire_recovered", Json::Bool(self.wire_recovered)),
            ("recovery_seconds", Json::Num(self.recovery_seconds)),
            (
                "recovery_budget_seconds",
                Json::Num(self.recovery_budget_seconds),
            ),
            ("recovered", Json::Bool(self.recovered)),
            ("lookups", Json::Num(self.lookups as f64)),
            ("parked_lookups", Json::Num(self.parked_lookups as f64)),
            (
                "inconsistent_lookups",
                Json::Num(self.inconsistent_lookups as f64),
            ),
            ("resolves", Json::Num(self.resolves as f64)),
            ("final_epoch", Json::Num(self.final_epoch as f64)),
            (
                "cost_matches_scratch",
                Json::Bool(self.cost_matches_scratch),
            ),
            (
                "swaps",
                Json::arr(self.swap_checks.iter().map(|c| {
                    Json::obj([
                        ("epoch", Json::Num(c.epoch as f64)),
                        ("server_cost", Json::Num(c.server_cost)),
                        ("scratch_cost", Json::Num(c.scratch_cost)),
                        (
                            "abs_error",
                            Json::Num((c.server_cost - c.scratch_cost).abs()),
                        ),
                    ])
                })),
            ),
        ])
    }
}

/// Runs the chaos replay on a scenario.
///
/// Uses the scenario's own `faults` block when it pins one, else
/// [`default_chaos_plan`]. The harness overrides the resilience knobs to
/// chaos-friendly values (250ms watchdog, 10ms backoff, 256-slot event
/// queue) so the scheduled stall reliably trips the watchdog and the
/// scheduled flood reliably sheds. `lookups_override` shrinks the
/// post-recovery replay for debug-mode tests.
///
/// # Panics
/// Panics when the default engine cannot run on the scenario or the
/// harness's own plumbing (sockets, threads) fails — never from an
/// injected fault; absorbing those is the point.
pub fn chaos_replay(scenario: &Scenario, lookups_override: Option<usize>) -> ChaosOutcome {
    // The fault armory is process-global: serialize against every other
    // test or bench that arms a plan.
    let _serial = faults::exclusive();

    let instance = scenario.build_instance();
    let drift = scenario.drift_spec();

    // Scale the watchdog to the scenario: a fixed deadline would either
    // never fire (tiny instances) or flag every honest attempt (big
    // instances in debug builds). One un-faulted probe solve calibrates
    // it; the scheduled stall is then pinned safely past the deadline.
    let default_cfg = ServerConfig::default();
    let probe_solver = solvers::by_name(&default_cfg.solver).expect("registered");
    let probe_started = Instant::now();
    let _ = probe_solver.solve(&instance, &default_cfg.request);
    let watchdog_seconds = (5.0 * probe_started.elapsed().as_secs_f64()).max(0.25);
    let stall_millis = (2_000.0 * watchdog_seconds) as u64 + 200;

    let server = ServerHandle::start(
        &instance,
        ServerConfig {
            resolve_threshold: drift.resolve_threshold,
            resilience: ResilienceConfig {
                solve_timeout_seconds: Some(watchdog_seconds),
                max_retries: 5,
                backoff_base_seconds: 0.01,
                backoff_max_seconds: 0.05,
                event_queue_capacity: 256,
                ..ResilienceConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("the default engine runs on any scenario");
    let num_objects = instance.num_objects();
    let num_nodes = instance.num_nodes();

    let plan = scenario
        .fault_plan()
        .cloned()
        .unwrap_or_else(|| default_chaos_plan(scenario.seed, stall_millis));
    let chaos_started = Instant::now();
    // Fault fires are asserted through the telemetry mirror (the
    // `dmn_faults_fired_total{point=...}` counters the metrics endpoint
    // exports), not the armory's private ledger — so the chaos gate and
    // a production dashboard count from the same cells. The counters are
    // process-cumulative; deltas against these baselines scope them to
    // this run.
    let fired_counter = |point: &str| telemetry::fault_fired_total(point);
    let fired0 = [
        faults::points::SOLVE_PHASE1,
        faults::points::SERVER_RESOLVE,
        faults::points::EVENT_APPLY,
        faults::points::TCP_READ,
    ]
    .map(|p| fired_counter(p).get());
    let guard = faults::arm(&plan);
    let epoch0 = server.epoch();

    // The scheduled panic is caught and counted by the worker; its
    // default-hook backtrace is pure noise in a gate's output. Silenced
    // only for the storm (we hold the armory's exclusive gate, so no
    // other thread's panics can be swallowed by accident).
    let quiet_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    // Phase 1 — the storm: churn deltas (feeding the flood injector),
    // hammer lookups off the last good epoch, and force re-solves until
    // the scheduled panic and stall have been absorbed and a fresh epoch
    // is live again.
    let mut storm_rng = ChaCha8Rng::seed_from_u64(scenario.seed ^ 0x5708_14CA);
    let mut lookups = 0u64;
    let mut parked_lookups = 0u64;
    let mut inconsistent_lookups = 0u64;
    let mut storm_rounds = 0u32;
    let mut healed = false;
    let mut recovery_seconds = 0.0;
    for _ in 0..MAX_STORM_ROUNDS {
        storm_rounds += 1;
        let object = storm_rng.random_range(0..num_objects) as u64;
        let node = storm_rng.random_range(0..num_nodes);
        // An armed `event.apply` transient rejects the delta in-band;
        // that is a scheduled fault, not a harness bug — keep storming.
        let _ = server.apply(&Event::DemandDelta {
            object,
            node,
            read_delta: 1.0,
            write_delta: 0.0,
        });
        for _ in 0..STORM_LOOKUPS_PER_ROUND {
            let object = storm_rng.random_range(0..num_objects) as u64;
            let node = storm_rng.random_range(0..num_nodes);
            match server.lookup(object, node) {
                Ok(_) => {}
                Err(ServerError::UnknownObject(_)) => parked_lookups += 1,
                Err(_) => inconsistent_lookups += 1,
            }
            lookups += 1;
        }
        server.resolve_now();
        let health = server.health();
        if health.consecutive_failures == 0 && server.epoch() > epoch0 {
            healed = true;
            recovery_seconds = chaos_started.elapsed().as_secs_f64();
            break;
        }
    }
    if !healed {
        recovery_seconds = chaos_started.elapsed().as_secs_f64();
    }
    std::panic::set_hook(quiet_hook);
    let storm_health = server.health();

    // Phase 2 — the malformed-client burst against a live listener (the
    // armed `tcp.read` transients fire on the first lines).
    let (malformed_lines, malformed_rejected, wire_recovered) =
        malformed_burst(&server).expect("burst harness I/O");

    // Read the fired counters (telemetry mirror deltas) while the plan
    // is still armed, then stand down: the post-recovery replay must run
    // fault-free.
    let solver_panics = fired_counter(faults::points::SOLVE_PHASE1).get() - fired0[0];
    let stalled_resolves = fired_counter(faults::points::SERVER_RESOLVE).get() - fired0[1];
    let event_floods = fired_counter(faults::points::EVENT_APPLY).get() - fired0[2];
    let wire_faults = fired_counter(faults::points::TCP_READ).get() - fired0[3];
    drop(guard);

    // Phase 3 — post-recovery replay: the scenario's drift trace with
    // per-segment settles, exactly the clean benchmark's correctness
    // check. Any state the chaos corrupted shows up here as a cost
    // mismatch against the from-scratch solve.
    let baseline: f64 = instance.objects.iter().map(|o| o.total_requests()).sum();
    let events = drift.drift_events.max(CHAOS_SEGMENTS);
    let threshold_mass = drift.resolve_threshold * baseline;
    let drift_mass = drift
        .drift_mass
        .max(10.0 * threshold_mass / (2.0 * events as f64));
    let trace = sample_trace(
        &instance.objects,
        &TraceConfig {
            lookups: lookups_override.unwrap_or((drift.lookups / 4).max(10_000)),
            drift_events: events,
            drift_mass,
            hotspot_shift: num_nodes / 5 + 1,
            ..TraceConfig::default()
        },
        &mut ChaCha8Rng::seed_from_u64(scenario.seed ^ 0xC4A0),
    );
    let solver = solvers::by_name(&server.config().solver).expect("registered");
    let request = server.config().request.clone();
    let segment_len = trace.len().div_ceil(CHAOS_SEGMENTS);
    let mut swap_checks = Vec::new();
    for segment in trace.chunks(segment_len) {
        for op in segment {
            match *op {
                TraceOp::Lookup { object, node } => {
                    match server.lookup(object as u64, node) {
                        Ok(_) => {}
                        Err(ServerError::UnknownObject(_)) => parked_lookups += 1,
                        Err(_) => inconsistent_lookups += 1,
                    }
                    lookups += 1;
                }
                TraceOp::Delta {
                    object,
                    node,
                    read_delta,
                    write_delta,
                } => {
                    server
                        .apply(&Event::DemandDelta {
                            object: object as u64,
                            node,
                            read_delta,
                            write_delta,
                        })
                        .expect("trace deltas are valid");
                }
            }
        }
        server.wait_idle();
        let epoch = server.resolve_now();
        let snap = server.snapshot();
        let (exported, _ids) = server.export_instance();
        let scratch = solver.solve(&exported, &request);
        swap_checks.push(SwapCheck {
            epoch,
            server_cost: snap.cost.total(),
            scratch_cost: scratch.cost.total(),
        });
    }

    let final_health = server.health();
    let stats = server.stats();
    let final_epoch = server.epoch();
    server.shutdown();
    let cost_matches_scratch = swap_checks
        .iter()
        .all(|c| (c.server_cost - c.scratch_cost).abs() <= 1e-9 * c.scratch_cost.abs().max(1.0));
    let recovery_budget_seconds = CHAOS_RECOVERY_BUDGET_FLOOR_SECONDS + 6.0 * watchdog_seconds;
    let recovered = healed
        && recovery_seconds <= recovery_budget_seconds
        && final_health.consecutive_failures == 0;
    ChaosOutcome {
        storm_rounds,
        solver_panics,
        stalled_resolves,
        event_floods,
        wire_faults,
        resolve_failures: storm_health.total_failures,
        watchdog_timeouts: storm_health.timeouts,
        shed_deltas: final_health.shed_deltas,
        malformed_lines,
        malformed_rejected,
        wire_recovered,
        recovery_seconds,
        recovery_budget_seconds,
        recovered,
        lookups,
        parked_lookups,
        inconsistent_lookups,
        resolves: stats.resolves,
        final_epoch,
        swap_checks,
        cost_matches_scratch,
    }
}

/// Throws the malformed corpus at a live listener serving `server` and
/// returns `(lines_sent, lines_rejected_in_band, clean_status_after)`.
fn malformed_burst(server: &ServerHandle) -> std::io::Result<(u64, u64, bool)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let acceptor = {
        let server = server.clone();
        std::thread::spawn(move || tcp::serve(listener, server))
    };
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut response = String::new();

    let mut sent = 0u64;
    let mut rejected = 0u64;
    for line in malformed_corpus() {
        writeln!(writer, "{line}")?;
        sent += 1;
        response.clear();
        reader.read_line(&mut response)?;
        let doc = dmn_json::parse(&response).expect("responses are JSON");
        if doc.get("ok") == Some(&Json::Bool(false)) {
            rejected += 1;
        }
    }

    // The same connection, right after the abuse: a clean status must
    // answer healthy (and carry the resilience health block).
    writeln!(writer, r#"{{"op":"status"}}"#)?;
    response.clear();
    reader.read_line(&mut response)?;
    let wire_recovered = dmn_json::parse(&response)
        .ok()
        .is_some_and(|doc| doc.get("ok") == Some(&Json::Bool(true)) && doc.get("health").is_some());

    writeln!(writer, r#"{{"op":"quit"}}"#)?;
    response.clear();
    reader.read_line(&mut response)?;
    acceptor
        .join()
        .expect("acceptor thread joins")
        .expect("serve returns cleanly");
    Ok((sent, rejected, wire_recovered))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmn_workloads::{DriftSpec, TopologyKind, WorkloadParams};

    fn chaos_scenario() -> Scenario {
        Scenario {
            name: "chaos-mini".into(),
            topology: TopologyKind::Ring,
            nodes: 16,
            storage_cost: 3.0,
            workload: WorkloadParams {
                num_objects: 4,
                base_mass: 60.0,
                ..Default::default()
            },
            seed: 11,
            capacities: None,
            stream: None,
            drift: Some(DriftSpec {
                lookups: 4_000,
                drift_events: 8,
                drift_mass: 3.0,
                resolve_threshold: 0.02,
            }),
            faults: None,
            timeline: None,
        }
    }

    #[test]
    fn chaos_replay_fires_every_class_and_heals() {
        let outcome = chaos_replay(&chaos_scenario(), Some(4_000));
        assert!(outcome.solver_panics >= 1, "{outcome:?}");
        assert!(outcome.stalled_resolves >= 1, "{outcome:?}");
        assert!(outcome.event_floods >= 1, "{outcome:?}");
        assert!(outcome.wire_faults >= 1, "{outcome:?}");
        assert!(outcome.resolve_failures >= 2, "{outcome:?}");
        assert!(outcome.watchdog_timeouts >= 1, "{outcome:?}");
        assert!(outcome.shed_deltas > 0, "{outcome:?}");
        assert_eq!(outcome.malformed_rejected, outcome.malformed_lines);
        assert!(outcome.wire_recovered, "{outcome:?}");
        assert!(outcome.recovered, "{outcome:?}");
        assert_eq!(outcome.inconsistent_lookups, 0, "{outcome:?}");
        assert!(outcome.cost_matches_scratch, "{:?}", outcome.swap_checks);
        assert!(outcome.gate(), "{outcome:?}");

        let json = outcome.to_json().to_string_pretty();
        for needle in [
            "\"solver_panics\"",
            "\"stalled_resolves\"",
            "\"event_floods\"",
            "\"wire_faults\"",
            "\"watchdog_timeouts\"",
            "\"shed_deltas\"",
            "\"malformed_rejected\"",
            "\"recovery_seconds\"",
            "\"recovered\"",
            "\"inconsistent_lookups\"",
            "\"cost_matches_scratch\"",
            "\"swaps\"",
        ] {
            assert!(json.contains(needle), "missing {needle}");
        }
        dmn_json::parse(&json).expect("valid artifact section");
    }

    #[test]
    fn scenario_pinned_plan_overrides_the_default() {
        // A plan with a single benign transient: the gate must fail
        // (whole classes never fired) but the replay itself still heals.
        let mut scenario = chaos_scenario();
        scenario.faults = Some(FaultPlan::new(
            3,
            vec![FaultSpec::once(
                faults::points::EVENT_APPLY,
                FaultAction::TransientError,
            )],
        ));
        let outcome = chaos_replay(&scenario, Some(2_000));
        assert_eq!(outcome.solver_panics, 0, "{outcome:?}");
        assert_eq!(outcome.watchdog_timeouts, 0, "{outcome:?}");
        assert!(!outcome.gate(), "a benign plan must not pass the gate");
        assert!(outcome.cost_matches_scratch, "{:?}", outcome.swap_checks);
    }
}
