//! The CI perf-smoke check: one pinned scenario through the sequential,
//! sharded, seed-reference, and warm-started engines, emitted as a
//! machine-readable `BENCH_ci.json` artifact.
//!
//! CI runs this in release mode on every push. The JSON carries per-phase
//! timings, the full cost breakdown, and the phase-1 local-search counters
//! (moves accepted / candidates priced) for every engine so timing trends
//! are diffable across runs. Three boolean verdicts gate the job:
//!
//! * `costs_match` — the sharded placement and cost must equal the
//!   sequential reference (a mismatch means the shard merge changed the
//!   answer);
//! * `fast_matches_seed` — the incremental phase-1 local search must
//!   produce the *identical* placement to the seed from-scratch
//!   implementation (`FlSolverKind::LocalSearchRef`) on the smoke corpus;
//! * `capacitated_ok` — under the pinned per-node copy capacities the
//!   native `capacitated` engine must stay feasible and cost no more than
//!   the greedy repair of the sequential reference (its margin is
//!   recorded in the artifact's `capacitated` section);
//! * `shards_balanced` — the sharded run (cost-weighted LPT partition)
//!   must keep the max/min shard-cost ratio under
//!   [`MAX_SHARD_COST_SKEW`] (round-robin skewed shard 0 to ~1.8x
//!   shard 3 on this scenario);
//! * `server_ok` — the placement server must survive the drift-trace
//!   replay (`server` section): every post-swap snapshot cost equals a
//!   from-scratch solve of the drifted instance within 1e-9, with at
//!   least [`server_bench::REPLAY_SEGMENTS`] completed re-solves.
//!
//! * `obs_ok` — the telemetry A/B replay (`telemetry` section) must
//!   actually sample lookup latencies into the registry histogram, and —
//!   release builds only — the telemetry-enabled replay must sustain at
//!   least [`MIN_OBS_THROUGHPUT_RATIO`] of the disarmed replay's lookup
//!   throughput and the [`MIN_SERVER_LOOKUPS_PER_SEC`] floor (the
//!   "observability is near-free" acceptance bar);
//!
//! * `timeline_ok` — the warm-start chain over the pinned time-sliced
//!   scenario ([`crate::timeline::pinned_scenario`]) must never cost more
//!   than the cold per-slot re-solve on any slot (beyond
//!   [`crate::timeline::WARM_TOLERANCE`]); the artifact's `timeline`
//!   section carries the cost-over-time and copies-moved-per-slot series
//!   for both chains and the dynamic zoo;
//!
//! * `scale_ok` — the sparse metric backend must stay within
//!   [`MAX_SPARSE_COST_RATIO`] of the dense solve on the truncating
//!   control scenario (a hotspot variant of the smoke grid where the
//!   candidate balls genuinely truncate), and — release builds only — the
//!   committed 10,000-node `scenarios/grid_10k.json` must solve through
//!   `solvers::by_name("approx")` with the sparse backend in at most
//!   [`MAX_SCALE_WALL_SECONDS`] (the artifact's `scale` section).
//!
//! The measured `phase1_speedup` (seed phase-1 seconds / incremental
//! phase-1 seconds, both single-threaded) is recorded in the artifact; the
//! release binary additionally fails below [`MIN_PHASE1_SPEEDUP`], below
//! [`MIN_SERVER_LOOKUPS_PER_SEC`] sustained server lookups, or above
//! [`MAX_SERVER_RESOLVE_SECONDS`] of re-solve latency.

use dmn_approx::FlSolverKind;
use dmn_dynamic::bridge::{compete_standard, StaticOracle};
use dmn_dynamic::report::CompetitiveReport;
use dmn_dynamic::stream::{sample_stream, StreamConfig};
use dmn_json::Json;
use dmn_solve::{solvers, MetricBackend, PartitionStrategy, SolveReport, SolveRequest};
use dmn_workloads::{DriftSpec, Scenario, TopologyKind, WorkloadParams};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::{chaos_replay, server_bench, timeline};

/// Shard count pinned for the smoke run (small enough for 2-core CI
/// runners, big enough to exercise a real fan-out and merge).
pub const SMOKE_SHARDS: usize = 4;

/// Uniform per-node copy capacity of the capacitated smoke run: tight
/// enough that the unconstrained placement needs real repair work, loose
/// enough to stay trivially feasible (nodes >= objects on the pinned
/// scenario).
pub const SMOKE_CAP_PER_NODE: usize = 1;

/// Release-mode floor on the phase-1 speedup of the incremental local
/// search over the seed implementation (the measured ratio is ~10x; the
/// gate leaves headroom for noisy runners).
pub const MIN_PHASE1_SPEEDUP: f64 = 5.0;

/// Stationary-stream length of the dynamic gate (`dynamic_ok`): long
/// enough that empirical frequencies are informative, short enough that
/// the simulation stays a small fraction of the smoke wall time.
pub const SMOKE_STREAM_LEN: usize = 4_000;

/// Tolerance of the `dynamic_ok` gate: on a stationary stream every online
/// strategy must cost at least the informed static oracle, up to fp slack.
pub const DYNAMIC_RATIO_FLOOR: f64 = 1.0 - 1e-9;

/// Ceiling on the sharded run's max/min shard-cost ratio. The
/// cost-weighted LPT partition lands at ~1.10 on the pinned scenario
/// (round-robin was ~1.76); the gate leaves room for workload bumps.
pub const MAX_SHARD_COST_SKEW: f64 = 1.35;

/// Release-mode floor on sustained server lookups/second during the
/// drift-trace replay (measured well above 10M/s; the floor is the
/// "memory speed" acceptance bar with generous runner headroom).
pub const MIN_SERVER_LOOKUPS_PER_SEC: f64 = 1_000_000.0;

/// Release-mode ceiling on the server's worst re-solve latency over the
/// replay (a warm-started approx solve of the pinned scenario is well
/// under a second on CI runners).
pub const MAX_SERVER_RESOLVE_SECONDS: f64 = 5.0;

/// Release-mode floor on telemetry-enabled / telemetry-disabled lookup
/// throughput in the A/B replay: arming the registry may cost at most
/// 10% (the sampled-latency design keeps the measured ratio near 1.0;
/// the margin absorbs runner noise).
pub const MIN_OBS_THROUGHPUT_RATIO: f64 = 0.9;

/// Ceiling on the sparse/dense total-cost ratio on the truncating control
/// scenario (the `scale_ok` quality half): truncated candidate balls may
/// miss facilities the dense path would open, so the gate bounds the
/// resulting cost slack instead of demanding bit-equality.
pub const MAX_SPARSE_COST_RATIO: f64 = 1.05;

/// Release-mode ceiling on the wall clock of the committed 10k-node
/// scenario solved with the sparse metric backend (the `scale_ok` speed
/// half; the dense path cannot even allocate its 800 MB closure in that
/// budget).
pub const MAX_SCALE_WALL_SECONDS: f64 = 30.0;

/// The pinned scenario: a 15x15 grid (225 nodes), 32 objects, fixed seed —
/// big enough that phase 1 dominates and the incremental-vs-seed speedup
/// is meaningful. Changing it invalidates cross-run timing comparisons,
/// so bump deliberately (last bump: PR 3, 12x12/16 -> 15x15/32 for the
/// phase-1 fast-path gate).
pub fn smoke_scenario() -> Scenario {
    Scenario {
        name: "perf-smoke".into(),
        topology: TopologyKind::Grid { rows: 15, cols: 15 },
        nodes: 225,
        storage_cost: 4.0,
        workload: WorkloadParams {
            num_objects: 32,
            base_mass: 120.0,
            write_fraction: 0.2,
            ..Default::default()
        },
        seed: 42,
        capacities: None,
        stream: None,
        // The server replay: ~1.2M lookups with 60 drift events — the
        // "million-user" trace of the acceptance gate.
        drift: Some(DriftSpec::default()),
        faults: None,
        timeline: None,
    }
}

/// The truncating control variant of a scenario: same topology, storage
/// costs, and seed, but a hotspot workload (15% active nodes, locality
/// decay) so the sparse path's candidate balls genuinely truncate and the
/// sparse-vs-dense cost ratio measures something (with the smoke
/// scenario's full-coverage workload the two paths are bit-identical).
fn control_of(scenario: &Scenario) -> Scenario {
    Scenario {
        name: format!("{}-control", scenario.name),
        workload: WorkloadParams {
            active_fraction: 0.15,
            locality: 0.7,
            ..scenario.workload.clone()
        },
        stream: None,
        drift: None,
        ..scenario.clone()
    }
}

/// The pinned 10,000-node scale scenario. The committed
/// `scenarios/grid_10k.json` mirrors this construction exactly (a unit
/// test pins the two together): a 100x100 unit grid with 32 objects whose
/// hotspot workloads (0.4% active nodes, locality decay) keep the
/// per-object candidate balls small enough for the sparse path to solve
/// the instance in seconds.
pub fn scale_scenario() -> Scenario {
    Scenario {
        name: "grid-10k-sparse".into(),
        topology: TopologyKind::Grid {
            rows: 100,
            cols: 100,
        },
        nodes: 10_000,
        storage_cost: 4.0,
        workload: WorkloadParams {
            num_objects: 32,
            base_mass: 400.0,
            write_fraction: 0.2,
            active_fraction: 0.004,
            locality: 0.6,
            ..Default::default()
        },
        seed: 10_000,
        capacities: None,
        stream: None,
        drift: None,
        faults: None,
        timeline: None,
    }
}

/// Outcome of the 10k-node sparse scale run (`BENCH_ci.json`'s
/// `scale.run` section).
#[derive(Debug, Clone)]
pub struct ScaleOutcome {
    /// Scenario name.
    pub name: String,
    /// Node count of the built network.
    pub nodes: usize,
    /// Object count.
    pub objects: usize,
    /// Wall clock of the full sparse solve.
    pub wall_seconds: f64,
    /// Seconds spent building the truncated per-object closures.
    pub metric_build_seconds: f64,
    /// Total cost of the sparse placement (exact, via per-copy
    /// Dijkstra evaluation — the dense closure is never built).
    pub total_cost: f64,
    /// Truncated closure rows built across all objects.
    pub candidate_rows: f64,
    /// True when the wall clock is under [`MAX_SCALE_WALL_SECONDS`]
    /// (always true in debug builds, where timings mean nothing).
    pub within_budget: bool,
}

impl ScaleOutcome {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::Str(self.name.clone())),
            ("nodes", Json::Num(self.nodes as f64)),
            ("objects", Json::Num(self.objects as f64)),
            ("wall_seconds", Json::Num(self.wall_seconds)),
            ("metric_build_seconds", Json::Num(self.metric_build_seconds)),
            ("total_cost", Json::Num(self.total_cost)),
            ("candidate_rows", Json::Num(self.candidate_rows)),
            ("max_wall_seconds", Json::Num(MAX_SCALE_WALL_SECONDS)),
            ("within_budget", Json::Bool(self.within_budget)),
        ])
    }
}

/// Solves a scenario through the registry with the sparse metric backend
/// and measures the wall clock against [`MAX_SCALE_WALL_SECONDS`] (release
/// builds; debug timings are meaningless so the budget check is skipped).
pub fn run_scale(scenario: &Scenario) -> ScaleOutcome {
    let instance = scenario.build_instance();
    let req = SolveRequest::new().metric_backend(MetricBackend::Sparse);
    let report = solvers::by_name("approx")
        .expect("approx registered")
        .solve(&instance, &req);
    ScaleOutcome {
        name: scenario.name.clone(),
        nodes: instance.num_nodes(),
        objects: instance.num_objects(),
        wall_seconds: report.wall_seconds,
        metric_build_seconds: report.metric_build_seconds(),
        total_cost: report.cost.total(),
        candidate_rows: meta_count(&report, "sparse-candidate-rows"),
        within_budget: cfg!(debug_assertions) || report.wall_seconds <= MAX_SCALE_WALL_SECONDS,
    }
}

/// Outcome of one smoke run: the serialized artifact plus the verdicts.
pub struct SmokeOutcome {
    /// The `BENCH_ci.json` document.
    pub json: Json,
    /// True when the sharded placement and cost equal the sequential ones.
    pub costs_match: bool,
    /// True when the incremental local search places identically to the
    /// seed from-scratch implementation.
    pub fast_matches_seed: bool,
    /// True when the native capacitated engine is feasible under the
    /// pinned per-node capacities and costs no more than the greedy
    /// repair of the sequential reference.
    pub capacitated_ok: bool,
    /// True when every online strategy's empirical competitive ratio
    /// against the `approx` oracle on the stationary smoke stream is at
    /// least [`DYNAMIC_RATIO_FLOOR`] (the informed static placement must
    /// win on stationary streams).
    pub dynamic_ok: bool,
    /// The stationary-stream competition backing `dynamic_ok`.
    pub dynamic: CompetitiveReport,
    /// True when the sharded run's max/min shard-cost ratio stays under
    /// [`MAX_SHARD_COST_SKEW`] (the cost-weighted partition gate).
    pub shards_balanced: bool,
    /// The measured max/min shard-cost ratio of the sharded run.
    pub shard_cost_skew: f64,
    /// True when the server replay's post-swap costs all equal the
    /// from-scratch solves (1e-9) and the run completed at least
    /// [`server_bench::REPLAY_SEGMENTS`] re-solves.
    pub server_ok: bool,
    /// The server drift-trace replay backing `server_ok` (the
    /// telemetry-enabled leg of the A/B comparison).
    pub server: server_bench::ReplayOutcome,
    /// True when the telemetry A/B replay sampled lookup latencies and —
    /// release builds only — the armed leg held
    /// [`MIN_OBS_THROUGHPUT_RATIO`] of the disarmed throughput and the
    /// [`MIN_SERVER_LOOKUPS_PER_SEC`] floor.
    pub obs_ok: bool,
    /// The telemetry overhead A/B comparison backing `obs_ok`.
    pub telemetry: server_bench::ObsComparison,
    /// Seed phase-1 seconds / incremental phase-1 seconds (single-threaded
    /// both sides, best of two runs per side).
    pub phase1_speedup: f64,
    /// Sparse-backend / dense-backend total-cost ratio on the truncating
    /// control scenario.
    pub sparse_cost_ratio: f64,
    /// True when `sparse_cost_ratio` stays under
    /// [`MAX_SPARSE_COST_RATIO`] (the quality half of `scale_ok`).
    pub sparse_within_eps: bool,
    /// The timeline run backing `timeline_ok` (the pinned time-sliced
    /// scenario through the warm/cold chains and the dynamic zoo).
    pub timeline: timeline::TimelineReport,
    /// True when the warm-start chain never cost more than the cold
    /// per-slot re-solve on any slot of the pinned timeline scenario
    /// (beyond [`timeline::WARM_TOLERANCE`]).
    pub timeline_ok: bool,
    /// The 10k-node sparse run, when one was attached ([`run`] attaches it
    /// in release builds; debug runs and the scaled-down unit tests skip
    /// the multi-second solve).
    pub scale: Option<ScaleOutcome>,
    /// `sparse_within_eps` and, when a scale run is attached, its wall
    /// clock staying under [`MAX_SCALE_WALL_SECONDS`].
    pub scale_ok: bool,
    /// The chaos replay, when one was attached ([`run`] always attaches
    /// one; the scaled-down unit tests attach their own or skip it).
    pub chaos: Option<chaos_replay::ChaosOutcome>,
    /// True when the attached chaos replay passed its gate — every fault
    /// class fired and was absorbed ([`chaos_replay::ChaosOutcome::gate`]).
    /// Vacuously true when no chaos run is attached.
    pub chaos_ok: bool,
}

impl SmokeOutcome {
    /// The placement-correctness gate (timing-independent).
    pub fn gate(&self) -> bool {
        self.costs_match
            && self.fast_matches_seed
            && self.capacitated_ok
            && self.dynamic_ok
            && self.shards_balanced
            && self.server_ok
            && self.obs_ok
            && self.sparse_within_eps
            && self.timeline_ok
            && self.chaos_ok
    }

    /// Attaches a 10k-node scale run: records it under the artifact's
    /// `scale.run` key and folds its wall-clock verdict into `scale_ok`.
    pub fn attach_scale(&mut self, scale: ScaleOutcome) {
        self.scale_ok = self.sparse_within_eps && scale.within_budget;
        if let Json::Obj(top) = &mut self.json {
            if let Some(Json::Obj(section)) = top.get_mut("scale") {
                section.insert("run".into(), scale.to_json());
            }
            top.insert("scale_ok".into(), Json::Bool(self.scale_ok));
        }
        self.scale = Some(scale);
    }

    /// Attaches a chaos replay: records it under the artifact's `chaos`
    /// key and folds its verdict into `chaos_ok`.
    pub fn attach_chaos(&mut self, chaos: chaos_replay::ChaosOutcome) {
        self.chaos_ok = chaos.gate();
        if let Json::Obj(top) = &mut self.json {
            top.insert("chaos".into(), chaos.to_json());
            top.insert("chaos_ok".into(), Json::Bool(self.chaos_ok));
        }
        self.chaos = Some(chaos);
    }
}

/// Races the dynamic strategy zoo against the `approx` oracle on a
/// stationary stream sampled from the scenario's workloads (the standard
/// racing convention of `dmn_dynamic::bridge::compete_standard`).
fn run_dynamic(instance: &dmn_core::instance::Instance, seed: u64) -> CompetitiveReport {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x0D1A_0CC5);
    let stream = sample_stream(
        &instance.objects,
        &StreamConfig {
            length: SMOKE_STREAM_LEN,
            ..Default::default()
        },
        &mut rng,
    );
    compete_standard(instance, &stream, &StaticOracle::approx(), stream.len())
        .expect("approx oracle runs on any network")
}

/// Wall-clock seconds of one named phase of a report (0 when absent).
fn phase_seconds(report: &SolveReport, name: &str) -> f64 {
    report
        .phases
        .iter()
        .find(|p| p.name == name)
        .map_or(0.0, |p| p.seconds)
}

/// A meta counter as a number (0 when absent or unparsable).
fn meta_count(report: &SolveReport, key: &str) -> f64 {
    report
        .meta_value(key)
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.0)
}

/// Runs the smoke comparison on the pinned scenario, plus — in release
/// builds, where a multi-second solve is affordable and its timing
/// meaningful — the committed 10k-node sparse scale run.
pub fn run() -> SmokeOutcome {
    let mut outcome = run_with(&smoke_scenario(), SMOKE_SHARDS);
    // The chaos replay runs in every build (its faults are wall-clock
    // bounded, not throughput bound); debug builds shrink the
    // post-recovery trace so the gate stays fast.
    let chaos_lookups = cfg!(debug_assertions).then_some(20_000);
    outcome.attach_chaos(chaos_replay::chaos_replay(&smoke_scenario(), chaos_lookups));
    if !cfg!(debug_assertions) {
        outcome.attach_scale(run_scale(&scale_scenario()));
    }
    outcome
}

/// Runs the smoke comparison on an arbitrary scenario (the unit tests use
/// a scaled-down instance through this same code path).
pub fn run_with(scenario: &Scenario, shards: usize) -> SmokeOutcome {
    let instance = scenario.build_instance();
    let approx = solvers::by_name("approx").expect("approx registered");

    // The references really are sequential (one thread), so the artifact's
    // timings stay comparable across runners with different core counts.
    // Each timed path runs twice and the speedup gate uses the per-path
    // *minimum* phase-1 time: a transient stall on a shared runner then
    // inflates at most one of the two samples instead of failing the job.
    let one_thread = SolveRequest::new().max_threads(Some(1));
    let sequential = approx.solve(&instance, &one_thread);
    let sequential2 = approx.solve(&instance, &one_thread);
    let seed_req = one_thread.clone().fl_solver(FlSolverKind::LocalSearchRef);
    let seed_ref = approx.solve(&instance, &seed_req);
    let seed_ref2 = approx.solve(&instance, &seed_req);
    let warm = approx.solve(&instance, &one_thread.clone().fl_warm_start(true));
    // Cost-weighted (LPT) partition: round-robin left shard 0 at ~1.8x
    // shard 3's cost on this scenario; sorting objects descending by
    // request mass before the greedy bin assignment balances the shards
    // without changing the merged placement.
    let sharded_req = SolveRequest::new()
        .shards(shards)
        .partition(PartitionStrategy::CostWeighted);
    let sharded = solvers::by_name("sharded-approx")
        .expect("sharded-approx registered")
        .solve(&instance, &sharded_req);
    let shard_cost_skew = sharded.shard_cost_skew();
    let shards_balanced = shard_cost_skew <= MAX_SHARD_COST_SKEW;

    // The capacitated gate: the native engine must stay feasible and
    // never exceed the greedy-repair baseline on the same request.
    let cap = vec![SMOKE_CAP_PER_NODE; instance.num_nodes()];
    let cap_req = SolveRequest::new().capacities(cap.clone());
    let repaired = approx.solve(&instance, &cap_req);
    let capacitated = solvers::by_name("capacitated")
        .expect("capacitated registered")
        .solve(&instance, &cap_req);
    let cap_stats = capacitated.capacity.expect("capacity stats reported");
    let cap_feasible = dmn_approx::respects_capacities(&capacitated.placement, &cap)
        && dmn_approx::respects_capacities(&repaired.placement, &cap);
    let capacitated_ok = cap_feasible
        && capacitated.cost.total() <= repaired.cost.total() + 1e-6 * repaired.cost.total();

    // The sparse-metric quality gate: on the truncating control variant
    // (hotspot workload, so the candidate balls really truncate) the
    // sparse backend's total cost must stay within MAX_SPARSE_COST_RATIO
    // of the dense solve.
    let control = control_of(scenario);
    let control_instance = control.build_instance();
    let control_dense = approx.solve(&control_instance, &one_thread);
    let control_sparse = approx.solve(
        &control_instance,
        &one_thread.clone().metric_backend(MetricBackend::Sparse),
    );
    let sparse_cost_ratio = control_sparse.cost.total() / control_dense.cost.total();
    let sparse_within_eps = sparse_cost_ratio <= MAX_SPARSE_COST_RATIO;

    // The timeline gate: over the pinned time-sliced scenario the
    // warm-start chain must never lose to the cold per-slot re-solve on
    // any slot (the best-of fold makes that hold by construction; the
    // recorded `warm_fallbacks` counter keeps the claim honest).
    let timeline_report =
        timeline::run_timeline(&timeline::pinned_scenario(), "approx", &SolveRequest::new())
            .expect("pinned timeline scenario runs");
    let timeline_ok = timeline_report.timeline_ok();

    // The dynamic gate: on a stationary stream the informed static oracle
    // must win against every online strategy.
    let dynamic = run_dynamic(&instance, scenario.seed);
    let dynamic_ok = dynamic.runs.iter().all(|r| r.ratio >= DYNAMIC_RATIO_FLOOR);

    // The server gate: replay the scenario's drift trace against the
    // placement daemon; every post-swap snapshot must cost exactly what
    // a from-scratch solve of the drifted instance costs. The replay
    // runs A/B (telemetry disarmed, then armed); the armed leg doubles
    // as the `server` outcome so its gates run under real observability.
    let telemetry_ab = server_bench::replay_ab(scenario, None);
    let server = telemetry_ab.enabled.clone();
    let server_ok =
        server.cost_matches_scratch && server.resolves >= server_bench::REPLAY_SEGMENTS as u64;
    let obs_ok = server.latency_samples > 0
        && server.lookup_p99 > 0.0
        && (cfg!(debug_assertions)
            || (telemetry_ab.overhead_ratio >= MIN_OBS_THROUGHPUT_RATIO
                && server.lookups_per_sec >= MIN_SERVER_LOOKUPS_PER_SEC));

    let costs_match = sharded.placement == sequential.placement
        && (sharded.cost.total() - sequential.cost.total()).abs() < 1e-9;
    let fast_matches_seed = sequential.placement == seed_ref.placement
        && sequential.placement == sequential2.placement
        && (sequential.cost.total() - seed_ref.cost.total()).abs() < 1e-9;
    let seed_p1 = phase_seconds(&seed_ref, "facility-location")
        .min(phase_seconds(&seed_ref2, "facility-location"));
    let fast_p1 = phase_seconds(&sequential, "facility-location")
        .min(phase_seconds(&sequential2, "facility-location"));
    let phase1_speedup = if fast_p1 > 0.0 {
        seed_p1 / fast_p1
    } else {
        0.0
    };

    let json = Json::obj([
        (
            "scenario",
            Json::obj([
                ("name", Json::Str(scenario.name.clone())),
                ("nodes", Json::Num(instance.num_nodes() as f64)),
                ("objects", Json::Num(instance.num_objects() as f64)),
                ("seed", Json::Num(scenario.seed as f64)),
                ("shards", Json::Num(shards as f64)),
            ]),
        ),
        (
            "solvers",
            Json::arr([
                sequential.to_json(),
                sharded.to_json(),
                seed_ref.to_json(),
                warm.to_json(),
            ]),
        ),
        (
            "fl",
            Json::obj([
                ("seed_phase1_seconds", Json::Num(seed_p1)),
                ("fast_phase1_seconds", Json::Num(fast_p1)),
                ("phase1_speedup", Json::Num(phase1_speedup)),
                (
                    "warm_phase1_seconds",
                    Json::Num(phase_seconds(&warm, "facility-location")),
                ),
                ("fast_moves", Json::Num(meta_count(&sequential, "fl-moves"))),
                (
                    "fast_candidates",
                    Json::Num(meta_count(&sequential, "fl-candidates")),
                ),
                ("warm_moves", Json::Num(meta_count(&warm, "fl-moves"))),
                (
                    "warm_candidates",
                    Json::Num(meta_count(&warm, "fl-candidates")),
                ),
                ("warm_total_cost", Json::Num(warm.cost.total())),
            ]),
        ),
        (
            "capacitated",
            Json::obj([
                ("cap_per_node", Json::Num(SMOKE_CAP_PER_NODE as f64)),
                ("repair_cost", Json::Num(repaired.cost.total())),
                ("capacitated_cost", Json::Num(capacitated.cost.total())),
                (
                    "flow_seed_cost",
                    match cap_stats.flow_seed_cost {
                        Some(c) => Json::Num(c),
                        None => Json::Null,
                    },
                ),
                ("margin_vs_repair", Json::Num(cap_stats.margin_vs_repair)),
                ("moves", Json::Num(cap_stats.moves as f64)),
                ("rounds", Json::Num(cap_stats.rounds as f64)),
                ("feasible", Json::Bool(cap_feasible)),
                ("wall_seconds", Json::Num(capacitated.wall_seconds)),
            ]),
        ),
        ("dynamic", dynamic.to_json()),
        ("timeline", timeline_report.to_json()),
        ("server", server.to_json()),
        ("telemetry", telemetry_ab.to_json()),
        (
            "scale",
            Json::obj([
                ("control_scenario", Json::Str(control.name.clone())),
                ("dense_cost", Json::Num(control_dense.cost.total())),
                ("sparse_cost", Json::Num(control_sparse.cost.total())),
                ("sparse_cost_ratio", Json::Num(sparse_cost_ratio)),
                ("max_cost_ratio", Json::Num(MAX_SPARSE_COST_RATIO)),
                ("sparse_within_eps", Json::Bool(sparse_within_eps)),
                (
                    "sparse_metric_build_seconds",
                    Json::Num(control_sparse.metric_build_seconds()),
                ),
                (
                    "dense_metric_build_seconds",
                    Json::Num(control_dense.metric_build_seconds()),
                ),
                // `run` is filled by `attach_scale` (release builds).
                ("run", Json::Null),
            ]),
        ),
        ("costs_match", Json::Bool(costs_match)),
        ("fast_matches_seed", Json::Bool(fast_matches_seed)),
        ("capacitated_ok", Json::Bool(capacitated_ok)),
        ("dynamic_ok", Json::Bool(dynamic_ok)),
        ("shards_balanced", Json::Bool(shards_balanced)),
        ("shard_cost_skew", Json::Num(shard_cost_skew)),
        ("server_ok", Json::Bool(server_ok)),
        ("obs_ok", Json::Bool(obs_ok)),
        ("timeline_ok", Json::Bool(timeline_ok)),
        ("phase1_speedup", Json::Num(phase1_speedup)),
        ("scale_ok", Json::Bool(sparse_within_eps)),
        // Both are filled by `attach_chaos` (`run` always attaches).
        ("chaos", Json::Null),
        ("chaos_ok", Json::Bool(true)),
    ]);
    SmokeOutcome {
        json,
        costs_match,
        fast_matches_seed,
        capacitated_ok,
        dynamic_ok,
        dynamic,
        shards_balanced,
        shard_cost_skew,
        server_ok,
        server,
        obs_ok,
        telemetry: telemetry_ab,
        phase1_speedup,
        sparse_cost_ratio,
        sparse_within_eps,
        timeline: timeline_report,
        timeline_ok,
        scale: None,
        scale_ok: sparse_within_eps,
        chaos: None,
        chaos_ok: true,
    }
}

/// Runs the smoke comparison, writes the artifact to `path`, and returns
/// the outcome.
pub fn run_to_file(path: &str) -> std::io::Result<SmokeOutcome> {
    let outcome = run();
    std::fs::write(path, outcome.json.to_string_pretty())?;
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scaled-down scenario so the debug-mode test stays fast while
    /// driving the exact release code path.
    fn tiny_scenario() -> Scenario {
        Scenario {
            workload: WorkloadParams {
                num_objects: 6,
                base_mass: 120.0,
                write_fraction: 0.2,
                ..Default::default()
            },
            topology: TopologyKind::Grid { rows: 7, cols: 7 },
            nodes: 49,
            // A scaled-down replay so the debug-mode server gate stays
            // fast while still crossing the drift threshold repeatedly.
            drift: Some(DriftSpec {
                lookups: 30_000,
                drift_events: 12,
                ..DriftSpec::default()
            }),
            ..smoke_scenario()
        }
    }

    /// The chaos-mini scenario for the attach test (the chaos replay's
    /// own unit tests drive the fault schedule in depth; this one checks
    /// the artifact fold-in).
    fn chaos_scenario() -> Scenario {
        Scenario {
            name: "chaos-attach".into(),
            topology: TopologyKind::Ring,
            nodes: 16,
            workload: WorkloadParams {
                num_objects: 4,
                base_mass: 60.0,
                ..Default::default()
            },
            drift: Some(DriftSpec {
                lookups: 4_000,
                drift_events: 8,
                drift_mass: 3.0,
                resolve_threshold: 0.02,
            }),
            ..smoke_scenario()
        }
    }

    #[test]
    fn smoke_gates_hold_and_artifact_is_complete() {
        // Hold the fault gate through the solves: a concurrently armed
        // chaos plan must not inject into this run. Released before the
        // chaos attach below (which takes the gate itself).
        let gate = dmn_core::faults::exclusive();
        let mut outcome = run_with(&tiny_scenario(), 3);
        drop(gate);
        assert!(outcome.costs_match, "sharded deviated from sequential");
        assert!(
            outcome.fast_matches_seed,
            "incremental local search deviated from the seed implementation"
        );
        assert!(
            outcome.capacitated_ok,
            "capacitated engine infeasible or worse than the greedy repair"
        );
        assert!(
            outcome.dynamic_ok,
            "an online strategy beat the informed static oracle on a stationary stream:\n{}",
            outcome.dynamic
        );
        assert_eq!(outcome.dynamic.runs.len(), 5, "full zoo raced");
        assert!(
            outcome.shards_balanced,
            "cost-weighted shards skewed to {:.3}",
            outcome.shard_cost_skew
        );
        assert!(
            outcome.server_ok,
            "server replay failed: {:?}",
            outcome.server
        );
        assert!(
            outcome.server.cost_matches_scratch,
            "swap costs deviated from from-scratch solves: {:?}",
            outcome.server.swap_checks
        );
        assert!(
            outcome.obs_ok,
            "telemetry A/B failed: {:?}",
            outcome.telemetry
        );
        assert!(
            outcome.server.latency_samples > 0 && outcome.server.lookup_p99 > 0.0,
            "the armed replay leg records latency quantiles: {:?}",
            outcome.server
        );
        assert_eq!(
            outcome.telemetry.disabled.latency_samples, 0,
            "the disarmed leg must not record"
        );
        assert!(
            outcome.sparse_within_eps,
            "sparse backend cost ratio {:.4} breaches the {:.2} ceiling",
            outcome.sparse_cost_ratio, MAX_SPARSE_COST_RATIO
        );
        assert!(
            outcome.timeline_ok,
            "warm chain lost to cold on a slot: {:?}",
            outcome
                .timeline
                .slots
                .iter()
                .map(|s| (s.slot, s.cold_cost, s.warm_cost))
                .collect::<Vec<_>>()
        );
        assert!(
            !outcome.timeline.slots.is_empty(),
            "timeline gate solved at least one slot"
        );
        assert!(outcome.scale_ok, "no scale run attached: ratio gate only");
        assert!(outcome.scale.is_none(), "run_with never runs the 10k solve");
        assert!(
            outcome.chaos.is_none(),
            "run_with never runs the chaos replay"
        );
        assert!(outcome.chaos_ok, "vacuously true before a chaos attach");
        assert!(outcome.gate());

        // Fold in a scaled-down chaos replay: the verdict and the full
        // fault ledger land in the artifact.
        outcome.attach_chaos(chaos_replay::chaos_replay(&chaos_scenario(), Some(4_000)));
        assert!(outcome.chaos_ok, "chaos replay failed: {:?}", outcome.chaos);
        assert!(outcome.gate());
        let rendered = outcome.json.to_string_pretty();
        for needle in [
            "\"dynamic\"",
            "\"dynamic_ok\"",
            "\"oracle_engine\"",
            "\"rent-to-buy\"",
            "\"counting+migrate\"",
            "\"migration\"",
            "\"phase_ratios\"",
            "\"capacitated\"",
            "\"capacitated_ok\"",
            "\"repair_cost\"",
            "\"margin_vs_repair\"",
            "\"solvers\"",
            "\"approx\"",
            "\"sharded-approx\"",
            "\"phases\"",
            "\"total_cost\"",
            "\"costs_match\"",
            "\"fast_matches_seed\"",
            "\"phase1_speedup\"",
            "\"fl\"",
            "\"fl_moves\"",
            "\"fl_candidates\"",
            "\"local-search-ref\"",
            "\"local-search-warm\"",
            "\"server\"",
            "\"server_ok\"",
            "\"lookups_per_sec\"",
            "\"cost_matches_scratch\"",
            "\"max_resolve_seconds\"",
            "\"telemetry\"",
            "\"obs_ok\"",
            "\"overhead_ratio\"",
            "\"enabled_lookups_per_sec\"",
            "\"disabled_lookups_per_sec\"",
            "\"lookup_p50\"",
            "\"lookup_p99\"",
            "\"latency_samples\"",
            "\"sampling_interval\"",
            "\"shards_balanced\"",
            "\"shard_cost_skew\"",
            "\"timeline\"",
            "\"timeline_ok\"",
            "\"cold_costs\"",
            "\"warm_costs\"",
            "\"warm_raw_costs\"",
            "\"cold_moved\"",
            "\"warm_moved\"",
            "\"warm_fallbacks\"",
            "\"cost_multipliers\"",
            "\"demand_multipliers\"",
            "\"copies_moved\"",
            "\"scale\"",
            "\"scale_ok\"",
            "\"sparse_cost_ratio\"",
            "\"sparse_within_eps\"",
            "\"metric_build_seconds\"",
            "\"metric_backend\"",
            "\"chaos\"",
            "\"chaos_ok\"",
            "\"solver_panics\"",
            "\"watchdog_timeouts\"",
            "\"shed_deltas\"",
            "\"malformed_rejected\"",
            "\"recovery_seconds\"",
            "\"inconsistent_lookups\"",
        ] {
            assert!(rendered.contains(needle), "missing {needle} in {rendered}");
        }
        // Round-trips through the parser (CI consumers can load it).
        let parsed = dmn_json::parse(&rendered).expect("valid JSON");
        assert!(matches!(parsed, Json::Obj(_)));
    }

    /// Satellite pin of the shard-rebalance fix on the *full* smoke
    /// scenario: partitioning needs no solve, so this runs the real 225
    /// node / 32 object split. Round-robin is the skew the fix removed;
    /// LPT must stay near-balanced by request mass (the quantity the
    /// per-shard cost tracks).
    #[test]
    fn cost_weighted_partition_rebalances_the_smoke_shards() {
        let instance = smoke_scenario().build_instance();
        let mass_skew = |strategy: PartitionStrategy| -> f64 {
            let parts = dmn_solve::sharded::partition_objects(&instance, SMOKE_SHARDS, strategy);
            let masses: Vec<f64> = parts
                .iter()
                .map(|p| {
                    p.iter()
                        .map(|&x| instance.objects[x].total_requests())
                        .sum()
                })
                .collect();
            let max = masses.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let min = masses.iter().copied().fold(f64::INFINITY, f64::min);
            max / min
        };
        let round_robin = mass_skew(PartitionStrategy::RoundRobin);
        let lpt = mass_skew(PartitionStrategy::CostWeighted);
        assert!(
            round_robin > 1.5,
            "round-robin no longer skews ({round_robin:.3}); revisit the gate"
        );
        assert!(
            lpt < 1.1,
            "LPT partition skewed to {lpt:.3} (round-robin: {round_robin:.3})"
        );
    }

    #[test]
    fn pinned_scenario_meets_the_acceptance_floor() {
        let s = smoke_scenario();
        assert!(s.nodes >= 200, "smoke must stay >= 200 nodes");
        assert!(
            s.workload.num_objects >= 32,
            "smoke must stay >= 32 objects"
        );
    }

    /// The committed `scenarios/grid_10k.json` and the in-code
    /// [`scale_scenario`] must stay the same scenario (the gate solves the
    /// code-pinned one; the committed file is the user-facing artifact).
    #[test]
    fn committed_scale_scenario_matches_the_pinned_one() {
        let pinned = scale_scenario();
        assert!(pinned.nodes >= 10_000, "scale must stay >= 10k nodes");
        assert_eq!(pinned.build_graph().num_nodes(), 10_000);

        let path =
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios/grid_10k.json");
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let committed = Scenario::from_json(&dmn_json::parse(&text).expect("valid JSON"))
            .expect("parses as a scenario");
        assert_eq!(
            committed.to_json().to_string_pretty(),
            pinned.to_json().to_string_pretty(),
            "scenarios/grid_10k.json drifted from perf_smoke::scale_scenario()"
        );
    }

    /// The truncating control really truncates: the sparse run must build
    /// candidate sets smaller than the network (otherwise the ratio gate
    /// compares bit-identical runs and certifies nothing).
    #[test]
    fn control_scenario_truncates_the_candidate_balls() {
        let control = control_of(&tiny_scenario());
        let instance = control.build_instance();
        let report = solvers::by_name("approx")
            .expect("approx registered")
            .solve(
                &instance,
                &SolveRequest::new().metric_backend(MetricBackend::Sparse),
            );
        let rows = meta_count(&report, "sparse-candidate-rows");
        assert!(rows > 0.0, "sparse run reports its closure rows");
        assert!(
            rows < (instance.num_nodes() * instance.num_objects()) as f64,
            "candidate balls cover the whole graph — the control is not truncating"
        );
    }
}
