//! The CI perf-smoke check: sequential vs sharded solve on one pinned
//! scenario, emitted as a machine-readable `BENCH_ci.json` artifact.
//!
//! CI runs this in release mode on every push. The JSON carries per-phase
//! timings and the full cost breakdown for both engines so timing trends
//! are diffable across runs, and the boolean verdict — sharded placement
//! and cost must equal the sequential reference — is the gating signal:
//! a mismatch means the shard merge changed the answer, and the job fails.

use dmn_json::Json;
use dmn_solve::{solvers, PartitionStrategy, SolveReport, SolveRequest};
use dmn_workloads::{Scenario, TopologyKind, WorkloadParams};

/// Shard count pinned for the smoke run (small enough for 2-core CI
/// runners, big enough to exercise a real fan-out and merge).
pub const SMOKE_SHARDS: usize = 4;

/// The pinned scenario: a 12x12 grid, 16 objects, fixed seed. Changing it
/// invalidates cross-run timing comparisons, so bump deliberately.
pub fn smoke_scenario() -> Scenario {
    Scenario {
        name: "perf-smoke".into(),
        topology: TopologyKind::Grid { rows: 12, cols: 12 },
        nodes: 144,
        storage_cost: 4.0,
        workload: WorkloadParams {
            num_objects: 16,
            base_mass: 120.0,
            write_fraction: 0.2,
            ..Default::default()
        },
        seed: 42,
    }
}

/// Outcome of one smoke run: the serialized artifact plus the verdict.
pub struct SmokeOutcome {
    /// The `BENCH_ci.json` document.
    pub json: Json,
    /// True when the sharded placement and cost equal the sequential ones.
    pub costs_match: bool,
}

fn report_json(report: &SolveReport) -> Json {
    Json::obj([
        ("solver", Json::Str(report.solver.to_string())),
        ("total_cost", Json::Num(report.cost.total())),
        ("storage_cost", Json::Num(report.cost.storage)),
        ("read_cost", Json::Num(report.cost.read)),
        ("update_cost", Json::Num(report.cost.update())),
        ("total_copies", Json::Num(report.total_copies() as f64)),
        ("wall_seconds", Json::Num(report.wall_seconds)),
        (
            "phases",
            Json::arr(report.phases.iter().map(|p| {
                Json::obj([
                    ("name", Json::Str(p.name.to_string())),
                    ("seconds", Json::Num(p.seconds)),
                ])
            })),
        ),
        (
            "shards",
            Json::arr(report.shard_stats.iter().map(|s| {
                Json::obj([
                    ("shard", Json::Num(s.shard as f64)),
                    ("objects", Json::Num(s.objects as f64)),
                    ("seconds", Json::Num(s.seconds)),
                    ("cost", Json::Num(s.cost)),
                ])
            })),
        ),
    ])
}

/// Runs the smoke comparison and assembles the artifact.
pub fn run() -> SmokeOutcome {
    let scenario = smoke_scenario();
    let instance = scenario.build_instance();

    // The reference really is sequential (one thread), so the artifact's
    // timings stay comparable across runners with different core counts.
    let sequential = solvers::by_name("approx")
        .expect("approx registered")
        .solve(&instance, &SolveRequest::new().max_threads(Some(1)));
    let sharded_req = SolveRequest::new()
        .shards(SMOKE_SHARDS)
        .partition(PartitionStrategy::RoundRobin);
    let sharded = solvers::by_name("sharded-approx")
        .expect("sharded-approx registered")
        .solve(&instance, &sharded_req);

    let costs_match = sharded.placement == sequential.placement
        && (sharded.cost.total() - sequential.cost.total()).abs() < 1e-9;
    let json = Json::obj([
        (
            "scenario",
            Json::obj([
                ("name", Json::Str(scenario.name.clone())),
                ("nodes", Json::Num(instance.num_nodes() as f64)),
                ("objects", Json::Num(instance.num_objects() as f64)),
                ("seed", Json::Num(scenario.seed as f64)),
                ("shards", Json::Num(SMOKE_SHARDS as f64)),
            ]),
        ),
        (
            "solvers",
            Json::arr([report_json(&sequential), report_json(&sharded)]),
        ),
        ("costs_match", Json::Bool(costs_match)),
    ]);
    SmokeOutcome { json, costs_match }
}

/// Runs the smoke comparison, writes the artifact to `path`, and returns
/// the verdict.
pub fn run_to_file(path: &str) -> std::io::Result<bool> {
    let outcome = run();
    std::fs::write(path, outcome.json.to_string_pretty())?;
    Ok(outcome.costs_match)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_costs_match_and_artifact_is_complete() {
        let outcome = run();
        assert!(outcome.costs_match, "sharded deviated from sequential");
        let rendered = outcome.json.to_string_pretty();
        for needle in [
            "\"solvers\"",
            "\"approx\"",
            "\"sharded-approx\"",
            "\"phases\"",
            "\"total_cost\"",
            "\"costs_match\"",
        ] {
            assert!(rendered.contains(needle), "missing {needle} in {rendered}");
        }
        // Round-trips through the parser (CI consumers can load it).
        let parsed = dmn_json::parse(&rendered).expect("valid JSON");
        assert!(matches!(parsed, Json::Obj(_)));
    }
}
