//! Trace-replay benchmark of the placement server.
//!
//! Replays a scenario's synthetic zipf-with-drift trace
//! ([`dmn_workloads::sample_trace`]) against an in-process
//! [`ServerHandle`] and measures the server's two planes at once:
//!
//! * **sustained lookup throughput** — the replay loop issues the
//!   trace's `where-do-I-read` lookups as fast as the handle answers
//!   them, while the drift deltas interleaved in the trace push the
//!   server over its re-solve threshold, so background re-solves and
//!   epoch swaps happen *under* the measured load;
//! * **re-solve quality** — after each replay segment the driver forces
//!   a final re-solve, exports the live (drifted) instance, solves it
//!   from scratch with the same request, and records both costs. The
//!   server's incremental event bookkeeping is correct iff the costs
//!   agree to fp equality ([`ReplayOutcome::cost_matches_scratch`]).
//!
//! The perf-smoke harness runs this on the pinned scenario and gates CI
//! on the outcome (`server_ok`).

use std::time::Instant;

use dmn_core::telemetry;
use dmn_json::Json;
use dmn_server::{Event, ServerConfig, ServerError, ServerHandle};
use dmn_solve::solvers;
use dmn_workloads::{sample_trace, Scenario, TraceConfig, TraceOp};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Replay segments per run: each ends in a settle + from-scratch
/// comparison, so every run exercises at least this many epoch swaps.
pub const REPLAY_SEGMENTS: usize = 3;

/// One post-segment swap comparison.
#[derive(Debug, Clone, Copy)]
pub struct SwapCheck {
    /// Epoch after the forced settle re-solve.
    pub epoch: u64,
    /// Total cost the server's snapshot reports.
    pub server_cost: f64,
    /// Total cost of a from-scratch solve of the exported live instance.
    pub scratch_cost: f64,
}

/// Measurements of one trace replay.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// Trace length (lookups + drift deltas).
    pub ops: usize,
    /// Lookups issued.
    pub lookups: u64,
    /// Lookups that hit a transiently parked object (a drain delta zeroed
    /// its demand and a background swap landed before the re-inject).
    pub parked_lookups: u64,
    /// Wall seconds of the replay loop (the interleaved deltas are a
    /// vanishing fraction of the ops, so this is lookup time).
    pub lookup_seconds: f64,
    /// Sustained lookups per second under concurrent re-solves.
    pub lookups_per_sec: f64,
    /// Re-solves the server completed (background + forced).
    pub resolves: u64,
    /// Re-solves triggered by the drift threshold alone.
    pub background_resolves: u64,
    /// Settle re-solves forced by the driver (one per segment).
    pub forced_resolves: u64,
    /// Worst solve latency observed (initial solve included).
    pub max_resolve_seconds: f64,
    /// Epoch after the replay.
    pub final_epoch: u64,
    /// Per-segment swap comparisons.
    pub swap_checks: Vec<SwapCheck>,
    /// True when every swap's cost equals the from-scratch solve of the
    /// drifted instance within 1e-9 (relative).
    pub cost_matches_scratch: bool,
    /// Sampled lookup latencies recorded into the telemetry histogram
    /// (zero when telemetry was disabled for the run).
    pub latency_samples: u64,
    /// Median sampled lookup latency, seconds (zero without samples).
    pub lookup_p50: f64,
    /// 99th-percentile sampled lookup latency, seconds.
    pub lookup_p99: f64,
}

impl ReplayOutcome {
    /// The artifact section recorded under `server` in `BENCH_ci.json`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("ops", Json::Num(self.ops as f64)),
            ("lookups", Json::Num(self.lookups as f64)),
            ("parked_lookups", Json::Num(self.parked_lookups as f64)),
            ("lookup_seconds", Json::Num(self.lookup_seconds)),
            ("lookups_per_sec", Json::Num(self.lookups_per_sec)),
            ("resolves", Json::Num(self.resolves as f64)),
            (
                "background_resolves",
                Json::Num(self.background_resolves as f64),
            ),
            ("forced_resolves", Json::Num(self.forced_resolves as f64)),
            ("max_resolve_seconds", Json::Num(self.max_resolve_seconds)),
            ("final_epoch", Json::Num(self.final_epoch as f64)),
            (
                "cost_matches_scratch",
                Json::Bool(self.cost_matches_scratch),
            ),
            ("latency_samples", Json::Num(self.latency_samples as f64)),
            ("lookup_p50", Json::Num(self.lookup_p50)),
            ("lookup_p99", Json::Num(self.lookup_p99)),
            (
                "swaps",
                Json::arr(self.swap_checks.iter().map(|c| {
                    Json::obj([
                        ("epoch", Json::Num(c.epoch as f64)),
                        ("server_cost", Json::Num(c.server_cost)),
                        ("scratch_cost", Json::Num(c.scratch_cost)),
                        (
                            "abs_error",
                            Json::Num((c.server_cost - c.scratch_cost).abs()),
                        ),
                    ])
                })),
            ),
        ])
    }
}

/// Replays the scenario's drift trace against a freshly started server.
///
/// The trace's per-event drift mass is scaled up (if needed) so the
/// replay reliably crosses the re-solve threshold several times — a
/// drift benchmark that never drifts past its threshold measures
/// nothing. `lookups_override` shrinks the trace for debug-mode tests.
///
/// # Panics
/// Panics when the default server engine cannot run on the scenario or
/// a trace operation is rejected. A lookup on a transiently parked
/// object (all of its demand drained just before a background swap) is
/// tolerated and counted in [`ReplayOutcome::parked_lookups`].
pub fn replay_scenario(scenario: &Scenario, lookups_override: Option<usize>) -> ReplayOutcome {
    replay_scenario_with(scenario, lookups_override, true)
}

/// [`replay_scenario`] with explicit control over telemetry. The lookup
/// histogram is reset before the run so the reported p50/p99 cover
/// exactly this replay; serialize concurrent benchmark runs with
/// [`telemetry::exclusive`] if they share the process.
pub fn replay_scenario_with(
    scenario: &Scenario,
    lookups_override: Option<usize>,
    with_telemetry: bool,
) -> ReplayOutcome {
    // `ServerHandle::start` only ever arms telemetry, so the disabled
    // leg of an A/B run must disarm the registry explicitly.
    telemetry::set_enabled(with_telemetry);
    let lookup_hist = telemetry::histogram(telemetry::names::SERVER_LOOKUP_SECONDS);
    lookup_hist.reset();
    let instance = scenario.build_instance();
    let drift = scenario.drift_spec();
    let server = ServerHandle::start(
        &instance,
        ServerConfig {
            resolve_threshold: drift.resolve_threshold,
            telemetry: with_telemetry,
            ..ServerConfig::default()
        },
    )
    .expect("the default engine runs on any scenario");

    let baseline: f64 = instance.objects.iter().map(|o| o.total_requests()).sum();
    let events = drift.drift_events.max(REPLAY_SEGMENTS);
    // Each drift event moves `drift_mass` out and in again (2x mass of
    // drift); target ~10 threshold crossings over the whole trace.
    let threshold_mass = drift.resolve_threshold * baseline;
    let drift_mass = drift
        .drift_mass
        .max(10.0 * threshold_mass / (2.0 * events as f64));
    let trace = sample_trace(
        &instance.objects,
        &TraceConfig {
            lookups: lookups_override.unwrap_or(drift.lookups),
            drift_events: events,
            drift_mass,
            hotspot_shift: instance.num_nodes() / 5 + 1,
            ..TraceConfig::default()
        },
        &mut ChaCha8Rng::seed_from_u64(scenario.seed ^ 0x5EC7),
    );

    let solver = solvers::by_name(&server.config().solver).expect("registered");
    let request = server.config().request.clone();
    let segment_len = trace.len().div_ceil(REPLAY_SEGMENTS);
    let mut lookups = 0u64;
    let mut parked_lookups = 0u64;
    let mut lookup_seconds = 0.0;
    let mut forced = 0u64;
    let mut swap_checks = Vec::new();
    for segment in trace.chunks(segment_len) {
        let t0 = Instant::now();
        for op in segment {
            match *op {
                TraceOp::Lookup { object, node } => {
                    match server.lookup(object as u64, node) {
                        Ok(_) => {}
                        // A drain delta can zero an object's entire demand;
                        // if a background re-solve lands before the matching
                        // re-inject, the object is parked out of the epoch.
                        Err(ServerError::UnknownObject(_)) => parked_lookups += 1,
                        Err(e) => panic!("trace lookup rejected: {e}"),
                    }
                    lookups += 1;
                }
                TraceOp::Delta {
                    object,
                    node,
                    read_delta,
                    write_delta,
                } => {
                    server
                        .apply(&Event::DemandDelta {
                            object: object as u64,
                            node,
                            read_delta,
                            write_delta,
                        })
                        .expect("trace deltas are valid");
                }
            }
        }
        lookup_seconds += t0.elapsed().as_secs_f64();

        // Settle: drain background work, pin the snapshot to the exact
        // current live state, and race it against a from-scratch solve
        // of the exported instance under the same request.
        server.wait_idle();
        let epoch = server.resolve_now();
        forced += 1;
        let snap = server.snapshot();
        let (exported, _ids) = server.export_instance();
        let scratch = solver.solve(&exported, &request);
        swap_checks.push(SwapCheck {
            epoch,
            server_cost: snap.cost.total(),
            scratch_cost: scratch.cost.total(),
        });
    }

    let stats = server.stats();
    let final_epoch = server.epoch();
    server.shutdown();
    let latency = lookup_hist.snapshot();
    let cost_matches_scratch = swap_checks
        .iter()
        .all(|c| (c.server_cost - c.scratch_cost).abs() <= 1e-9 * c.scratch_cost.abs().max(1.0));
    ReplayOutcome {
        ops: trace.len(),
        lookups,
        parked_lookups,
        lookup_seconds,
        lookups_per_sec: lookups as f64 / lookup_seconds.max(1e-12),
        resolves: stats.resolves,
        background_resolves: stats.resolves.saturating_sub(forced),
        forced_resolves: forced,
        max_resolve_seconds: stats.max_resolve_seconds,
        final_epoch,
        swap_checks,
        cost_matches_scratch,
        latency_samples: latency.count,
        lookup_p50: latency.quantile(0.5),
        lookup_p99: latency.quantile(0.99),
    }
}

/// The telemetry-overhead comparison recorded under `telemetry` in
/// `BENCH_ci.json` and gated by `obs_ok`.
#[derive(Debug, Clone)]
pub struct ObsComparison {
    /// Best-of-2 replay with telemetry armed (histograms, spans,
    /// sampled lookup timing all live).
    pub enabled: ReplayOutcome,
    /// Best-of-2 replay with the registry disarmed — every telemetry
    /// decision costs one relaxed load.
    pub disabled: ReplayOutcome,
    /// `enabled.lookups_per_sec / disabled.lookups_per_sec`; the
    /// `obs_ok` gate requires ≥ 0.9 in release builds.
    pub overhead_ratio: f64,
}

impl ObsComparison {
    /// The artifact section recorded under `telemetry` in `BENCH_ci.json`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "enabled_lookups_per_sec",
                Json::Num(self.enabled.lookups_per_sec),
            ),
            (
                "disabled_lookups_per_sec",
                Json::Num(self.disabled.lookups_per_sec),
            ),
            ("overhead_ratio", Json::Num(self.overhead_ratio)),
            ("lookup_p50", Json::Num(self.enabled.lookup_p50)),
            ("lookup_p99", Json::Num(self.enabled.lookup_p99)),
            (
                "latency_samples",
                Json::Num(self.enabled.latency_samples as f64),
            ),
            (
                "sampling_interval",
                Json::Num(dmn_server::LOOKUP_SAMPLE_INTERVAL as f64),
            ),
        ])
    }
}

/// A/B rounds per mode: the replay's timed lookup window is well under
/// a second, so a sequential disabled-then-enabled schedule would fold
/// any machine drift straight into the ratio. The rounds interleave
/// (disabled, enabled) pairs and the ratio compares per-mode bests —
/// drift hits both modes alike and the minimum-statistics damp noise.
pub const AB_ROUNDS: usize = 3;

/// Replays the scenario [`AB_ROUNDS`] times per mode in interleaved
/// (disarmed, armed) pairs and reports the best-of-rounds throughput
/// ratio. Holds [`telemetry::exclusive`] for the duration and leaves
/// the registry armed (the process default) on return.
pub fn replay_ab(scenario: &Scenario, lookups_override: Option<usize>) -> ObsComparison {
    let _gate = telemetry::exclusive();
    let mut disabled: Option<ReplayOutcome> = None;
    let mut enabled: Option<ReplayOutcome> = None;
    let keep_best = |slot: &mut Option<ReplayOutcome>, run: ReplayOutcome| {
        if slot
            .as_ref()
            .is_none_or(|best| run.lookups_per_sec > best.lookups_per_sec)
        {
            *slot = Some(run);
        }
    };
    for _ in 0..AB_ROUNDS {
        let run = replay_scenario_with(scenario, lookups_override, false);
        keep_best(&mut disabled, run);
        let run = replay_scenario_with(scenario, lookups_override, true);
        keep_best(&mut enabled, run);
    }
    telemetry::set_enabled(true);
    let disabled = disabled.expect("AB_ROUNDS >= 1");
    let enabled = enabled.expect("AB_ROUNDS >= 1");
    ObsComparison {
        overhead_ratio: enabled.lookups_per_sec / disabled.lookups_per_sec.max(1e-12),
        enabled,
        disabled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmn_workloads::{DriftSpec, TopologyKind, WorkloadParams};

    fn mini_scenario() -> Scenario {
        Scenario {
            name: "server-mini".into(),
            topology: TopologyKind::Ring,
            nodes: 16,
            storage_cost: 3.0,
            workload: WorkloadParams {
                num_objects: 4,
                base_mass: 60.0,
                ..Default::default()
            },
            seed: 9,
            capacities: None,
            stream: None,
            drift: Some(DriftSpec {
                lookups: 6_000,
                drift_events: 12,
                drift_mass: 3.0,
                resolve_threshold: 0.02,
            }),
            faults: None,
            timeline: None,
        }
    }

    #[test]
    fn replay_resolves_and_matches_scratch() {
        // Serialize against the chaos tests: the fault armory is
        // process-global and an armed plan would inject into this replay.
        let _gate = dmn_core::faults::exclusive();
        let outcome = replay_scenario(&mini_scenario(), None);
        assert_eq!(outcome.lookups, 6_000);
        assert_eq!(outcome.forced_resolves as usize, REPLAY_SEGMENTS);
        assert!(
            outcome.resolves >= REPLAY_SEGMENTS as u64,
            "at least the forced settles completed: {outcome:?}"
        );
        assert!(outcome.cost_matches_scratch, "{:?}", outcome.swap_checks);
        assert!(outcome.final_epoch > REPLAY_SEGMENTS as u64);
        assert!(outcome.lookups_per_sec > 0.0);
        let json = outcome.to_json().to_string_pretty();
        for needle in [
            "\"lookups_per_sec\"",
            "\"cost_matches_scratch\"",
            "\"background_resolves\"",
            "\"max_resolve_seconds\"",
            "\"swaps\"",
            "\"scratch_cost\"",
            "\"lookup_p50\"",
            "\"lookup_p99\"",
            "\"latency_samples\"",
        ] {
            assert!(json.contains(needle), "missing {needle}");
        }
        dmn_json::parse(&json).expect("valid artifact section");
    }

    #[test]
    fn ab_compare_isolates_telemetry_and_reports_quantiles() {
        // Lock order: faults gate first (replay runs under the armory's
        // hit points), telemetry gate second (taken inside replay_ab).
        let _gate = dmn_core::faults::exclusive();
        let ab = replay_ab(&mini_scenario(), Some(2_000));
        assert!(
            ab.enabled.latency_samples > 0,
            "the armed leg samples lookups: {ab:?}"
        );
        assert_eq!(
            ab.disabled.latency_samples, 0,
            "the disarmed leg records nothing"
        );
        assert!(ab.enabled.lookup_p50 > 0.0);
        assert!(ab.enabled.lookup_p99 >= ab.enabled.lookup_p50);
        assert!(ab.overhead_ratio > 0.0);
        assert!(telemetry::enabled(), "replay_ab re-arms the registry");
        let json = ab.to_json().to_string_pretty();
        for needle in [
            "\"enabled_lookups_per_sec\"",
            "\"disabled_lookups_per_sec\"",
            "\"overhead_ratio\"",
            "\"lookup_p50\"",
            "\"lookup_p99\"",
            "\"sampling_interval\"",
        ] {
            assert!(json.contains(needle), "missing {needle}");
        }
        dmn_json::parse(&json).expect("valid artifact section");
    }
}
