//! Benchmarks and the per-claim experiment harness.
//!
//! The SPAA 2001 paper is a theory paper: it proves bounds instead of
//! reporting measurements. The `experiments` binary in this crate measures
//! every quantitative claim (see DESIGN.md §5 for the experiment index) and
//! prints `paper claim vs measured` tables; results are also written as
//! JSON under `results/`.
//!
//! Run all experiments:
//!
//! ```text
//! cargo run --release -p dmn-bench --bin experiments -- all
//! ```
//!
//! or a single one, e.g. `... -- e2`.

pub mod chaos_replay;
pub mod experiments;
pub mod fuzz;
pub mod perf_smoke;
pub mod report;
pub mod runner;
pub mod server_bench;
pub mod timeline;

pub use report::{Report, Table};
pub use runner::{par_sweep, seed_range};
