//! Standalone trace-replay benchmark of the placement server.
//!
//! ```text
//! cargo run --release -p dmn-bench --bin server_bench                  # pinned smoke scenario
//! cargo run --release -p dmn-bench --bin server_bench -- scenarios/grid_drift.json
//! cargo run --release -p dmn-bench --bin server_bench -- --lookups 200000 --out SERVER.json
//! ```
//!
//! Prints the human summary and optionally writes the JSON section the
//! perf-smoke artifact embeds under `server`.

use dmn_bench::{perf_smoke, server_bench};
use dmn_workloads::Scenario;

fn main() {
    let mut scenario_path: Option<String> = None;
    let mut lookups: Option<usize> = None;
    let mut out: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |what: &str| -> String {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {what}"))
                .clone()
        };
        match arg.as_str() {
            "--lookups" => lookups = Some(value("--lookups").parse().expect("numeric count")),
            "--out" => out = Some(value("--out")),
            other if other.starts_with("--") => {
                panic!("unknown flag {other} (usage: server_bench [SCENARIO.json] [--lookups N] [--out PATH])")
            }
            other => scenario_path = Some(other.to_string()),
        }
    }

    let scenario = match &scenario_path {
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
            let json = dmn_json::parse(&text).unwrap_or_else(|e| panic!("parse {path}: {e}"));
            Scenario::from_json(&json).unwrap_or_else(|e| panic!("scenario {path}: {e}"))
        }
        None => perf_smoke::smoke_scenario(),
    };

    println!(
        "server_bench: replaying '{}' ({} nodes)",
        scenario.name, scenario.nodes
    );
    let outcome = server_bench::replay_scenario(&scenario, lookups);
    println!(
        "  {} lookups in {:.3}s  ->  {:.0} lookups/s sustained",
        outcome.lookups, outcome.lookup_seconds, outcome.lookups_per_sec
    );
    println!(
        "  {} re-solves ({} background, {} forced), worst latency {:.3}s, final epoch {}",
        outcome.resolves,
        outcome.background_resolves,
        outcome.forced_resolves,
        outcome.max_resolve_seconds,
        outcome.final_epoch
    );
    for check in &outcome.swap_checks {
        println!(
            "  swap @epoch {:>3}: server {:.6} vs from-scratch {:.6} (|err| {:.2e})",
            check.epoch,
            check.server_cost,
            check.scratch_cost,
            (check.server_cost - check.scratch_cost).abs()
        );
    }
    println!(
        "  cost_matches_scratch: {}",
        if outcome.cost_matches_scratch {
            "yes"
        } else {
            "NO"
        }
    );
    if let Some(path) = out {
        std::fs::write(&path, outcome.to_json().to_string_pretty())
            .unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("server_bench: wrote {path}");
    }
    if !outcome.cost_matches_scratch {
        std::process::exit(1);
    }
}
