//! Experiment harness entry point.
//!
//! ```text
//! cargo run --release -p dmn-bench --bin experiments -- all
//! cargo run --release -p dmn-bench --bin experiments -- e2 e4
//! cargo run --release -p dmn-bench --bin experiments -- --solver approx
//! cargo run --release -p dmn-bench --bin experiments -- --solver tree-dp --nodes 64
//! cargo run --release -p dmn-bench --bin experiments -- --solver sharded-approx --shards 4 \
//!     --partition cost-weighted
//! cargo run --release -p dmn-bench --bin experiments -- --solver list
//! cargo run --release -p dmn-bench --bin experiments -- --solver capacitated \
//!     --capacities uniform:2
//! cargo run --release -p dmn-bench --bin experiments -- --cap-engine greedy-local \
//!     --capacities uniform:1
//! cargo run --release -p dmn-bench --bin experiments -- perf-smoke --out BENCH_ci.json
//! ```
//!
//! Reports print to stdout and are persisted as JSON under `results/`.
//! With `--solver <name>` any solver registered in `dmn-solve` is run on a
//! standard scenario suite (`--fl` picks the phase-1 backend,
//! `--capacities uniform:<k>` caps every node at `k` copies so any
//! experiment runs capacitated end-to-end, `--cap-engine INNER` is
//! shorthand for the native `cap:INNER` engine) and its `SolveReport`s
//! (placements, cost breakdowns, per-phase timings) are printed.
//! `perf-smoke` is the CI gate: on a pinned scenario it compares `approx`
//! against `sharded-approx`, the incremental phase-1 local search against
//! the seed implementation, *and* the native capacitated engine against
//! the greedy repair, writes the timing/cost/counter artifact, and exits
//! non-zero when any placement deviates, the capacitated engine loses to
//! the repair (or, in release builds, when the phase-1 speedup drops
//! below the pinned floor).

use dmn_approx::FlSolverKind;
use dmn_solve::{solvers, MetricBackend, PartitionStrategy, SolveRequest};
use dmn_workloads::{Scenario, TopologyKind, WorkloadParams};

fn usage() -> ! {
    eprintln!(
        "usage: experiments <e1..e16 | all>...\n       experiments --solver <name | list> \
         [--nodes N] [--objects K] [--seed S] [--shards N] [--partition STRATEGY] [--fl KIND] \
         [--metric dense|sparse] [--capacities uniform:<k>] [--cap-engine INNER]\n       \
         experiments perf-smoke [--out PATH]\n       \
         experiments chaos [--out PATH]\n       \
         experiments metrics [--out PATH]\n       \
         experiments timeline [--scenario PATH] [--engine NAME] [--out PATH]\n       \
         experiments fuzz [--cases N] [--seed S] [--regress DIR] [--out PATH]\n\n\
         --capacities uniform:<k> caps every node at k copies (any solver; non-native\n\
         engines go through the greedy repair); --cap-engine INNER runs the native\n\
         capacitated engine over INNER (shorthand for --solver cap:INNER);\n\
         --metric sparse solves over per-object truncated closures instead of the\n\
         dense O(n^2) APSP table (the 10k-node path)."
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    if args[0] == "--solver" {
        run_solver_bench(&args[1..]);
        return;
    }
    if args[0] == "perf-smoke" {
        run_perf_smoke(&args[1..]);
        return;
    }
    if args[0] == "chaos" {
        run_chaos(&args[1..]);
        return;
    }
    if args[0] == "metrics" {
        run_metrics(&args[1..]);
        return;
    }
    if args[0] == "timeline" {
        run_timeline(&args[1..]);
        return;
    }
    if args[0] == "fuzz" {
        run_fuzz(&args[1..]);
        return;
    }
    for id in &args {
        for report in dmn_bench::experiments::run(id) {
            report.emit();
        }
    }
}

/// The CI perf gate: writes `BENCH_ci.json` and fails on a placement
/// mismatch (sharded vs sequential, or incremental vs seed local search),
/// a skewed shard partition, a server replay whose post-swap costs
/// deviate from from-scratch solves, a failed chaos replay, or a
/// sparse-backend cost ratio above the control ceiling — and, in release
/// builds, on a phase-1 speedup, server lookup throughput, re-solve
/// latency, or 10k-node sparse solve wall clock outside the pinned
/// envelope.
fn run_perf_smoke(args: &[String]) {
    let mut out = "BENCH_ci.json".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => {
                out = it
                    .next()
                    .unwrap_or_else(|| {
                        eprintln!("missing value for --out");
                        usage()
                    })
                    .clone();
            }
            _ => usage(),
        }
    }
    let outcome = match dmn_bench::perf_smoke::run_to_file(&out) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("perf-smoke: could not write {out}: {e}");
            std::process::exit(1);
        }
    };
    if !outcome.costs_match {
        eprintln!("perf-smoke: sharded-approx cost DIFFERS from approx (see {out})");
        std::process::exit(1);
    }
    if !outcome.fast_matches_seed {
        eprintln!(
            "perf-smoke: incremental local search DIFFERS from the seed implementation (see {out})"
        );
        std::process::exit(1);
    }
    if !outcome.capacitated_ok {
        eprintln!(
            "perf-smoke: capacitated engine is infeasible or COSTS MORE than the greedy \
             repair (see {out})"
        );
        std::process::exit(1);
    }
    if !outcome.dynamic_ok {
        eprintln!(
            "perf-smoke: an online strategy BEAT the informed static oracle on a \
             stationary stream (see {out}):\n{}",
            outcome.dynamic
        );
        std::process::exit(1);
    }
    if !outcome.shards_balanced {
        eprintln!(
            "perf-smoke: cost-weighted shard partition is SKEWED {:.3}x (max/min shard \
             cost; ceiling {:.2}, see {out})",
            outcome.shard_cost_skew,
            dmn_bench::perf_smoke::MAX_SHARD_COST_SKEW
        );
        std::process::exit(1);
    }
    if !outcome.server_ok {
        eprintln!(
            "perf-smoke: server replay FAILED — post-swap cost deviated from the \
             from-scratch solve or too few re-solves completed (see {out})"
        );
        std::process::exit(1);
    }
    if !outcome.obs_ok {
        eprintln!(
            "perf-smoke: telemetry gate FAILED — armed/disarmed throughput ratio {:.3} \
             (floor {:.2} in release), {} latency samples, lookup p99 {:.3e}s (see {out})",
            outcome.telemetry.overhead_ratio,
            dmn_bench::perf_smoke::MIN_OBS_THROUGHPUT_RATIO,
            outcome.server.latency_samples,
            outcome.server.lookup_p99
        );
        std::process::exit(1);
    }
    if !outcome.chaos_ok {
        eprintln!(
            "perf-smoke: chaos replay FAILED — an injected fault class never fired, was \
             not absorbed, or left the server degraded or inconsistent (see {out})"
        );
        std::process::exit(1);
    }
    if !outcome.timeline_ok {
        eprintln!(
            "perf-smoke: timeline gate FAILED — the warm-start chain cost more than the \
             cold per-slot re-solve on a slot of the pinned time-sliced scenario (see {out})"
        );
        std::process::exit(1);
    }
    if !outcome.sparse_within_eps {
        eprintln!(
            "perf-smoke: sparse metric backend costs {:.4}x the dense solve on the \
             control scenario, above the {:.2} ceiling (see {out})",
            outcome.sparse_cost_ratio,
            dmn_bench::perf_smoke::MAX_SPARSE_COST_RATIO
        );
        std::process::exit(1);
    }
    // Timing gates only where timings mean something (release, as in CI) —
    // checked before the success line so a failing job never logs one.
    if !cfg!(debug_assertions) && outcome.phase1_speedup < dmn_bench::perf_smoke::MIN_PHASE1_SPEEDUP
    {
        eprintln!(
            "perf-smoke: phase-1 speedup {:.1}x is below the {:.0}x floor",
            outcome.phase1_speedup,
            dmn_bench::perf_smoke::MIN_PHASE1_SPEEDUP
        );
        std::process::exit(1);
    }
    if !cfg!(debug_assertions)
        && outcome.server.lookups_per_sec < dmn_bench::perf_smoke::MIN_SERVER_LOOKUPS_PER_SEC
    {
        eprintln!(
            "perf-smoke: server sustained {:.0} lookups/s, below the {:.0} floor",
            outcome.server.lookups_per_sec,
            dmn_bench::perf_smoke::MIN_SERVER_LOOKUPS_PER_SEC
        );
        std::process::exit(1);
    }
    if !cfg!(debug_assertions)
        && outcome.server.max_resolve_seconds > dmn_bench::perf_smoke::MAX_SERVER_RESOLVE_SECONDS
    {
        eprintln!(
            "perf-smoke: worst server re-solve took {:.2}s, above the {:.1}s ceiling",
            outcome.server.max_resolve_seconds,
            dmn_bench::perf_smoke::MAX_SERVER_RESOLVE_SECONDS
        );
        std::process::exit(1);
    }
    // The 10k-node sparse scale run is attached in release builds only
    // (debug timings are meaningless and the solve takes minutes there).
    if !cfg!(debug_assertions) {
        match &outcome.scale {
            None => {
                eprintln!("perf-smoke: release build attached no 10k scale run (see {out})");
                std::process::exit(1);
            }
            Some(scale) if !scale.within_budget => {
                eprintln!(
                    "perf-smoke: the {}-node sparse solve took {:.1}s, above the {:.0}s \
                     ceiling (see {out})",
                    scale.nodes,
                    scale.wall_seconds,
                    dmn_bench::perf_smoke::MAX_SCALE_WALL_SECONDS
                );
                std::process::exit(1);
            }
            Some(scale) => println!(
                "perf-smoke: {}-node sparse solve in {:.1}s ({:.0} closure rows, \
                 metric build {:.2}s); control cost ratio {:.4}",
                scale.nodes,
                scale.wall_seconds,
                scale.candidate_rows,
                scale.metric_build_seconds,
                outcome.sparse_cost_ratio
            ),
        }
    }
    println!(
        "perf-smoke: placements match (sharded == sequential, incremental == seed); \
         capacitated feasible and <= greedy repair; every online strategy >= the \
         static oracle on the stationary stream; shard cost skew {:.2}x; server \
         sustained {:.0} lookups/s with post-swap costs equal to from-scratch; \
         telemetry overhead ratio {:.3} (lookup p50 {:.2e}s, p99 {:.2e}s); \
         sparse/dense control cost ratio {:.4}; warm timeline chain <= cold on all {} \
         slots ({} fallbacks); phase-1 speedup {:.1}x; artifact at {out}",
        outcome.shard_cost_skew,
        outcome.server.lookups_per_sec,
        outcome.telemetry.overhead_ratio,
        outcome.server.lookup_p50,
        outcome.server.lookup_p99,
        outcome.sparse_cost_ratio,
        outcome.timeline.slots.len(),
        outcome.timeline.warm_fallbacks,
        outcome.phase1_speedup
    );
}

/// The timeline runner: per-slot re-solves (cold and warm-chained) plus
/// the dynamic zoo over a time-sliced scenario. Defaults to the pinned
/// `scenarios/grid_timeline.json` scenario and the `approx` engine;
/// `--scenario PATH` loads any scenario JSON with a `timeline` block.
/// Exits non-zero when the warm chain loses to cold on any slot.
fn run_timeline(args: &[String]) {
    let mut out = "TIMELINE_ci.json".to_string();
    let mut engine = "approx".to_string();
    let mut scenario_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |what: &str| -> String {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("missing value for {what}");
                    usage()
                })
                .clone()
        };
        match arg.as_str() {
            "--out" => out = value("--out"),
            "--engine" => engine = value("--engine"),
            "--scenario" => scenario_path = Some(value("--scenario")),
            _ => usage(),
        }
    }
    let scenario = match scenario_path {
        Some(path) => {
            let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                eprintln!("timeline: could not read {path}: {e}");
                std::process::exit(1);
            });
            let json = dmn_json::parse(&text).unwrap_or_else(|e| {
                eprintln!("timeline: {path} is not valid JSON: {e}");
                std::process::exit(1);
            });
            Scenario::from_json(&json).unwrap_or_else(|e| {
                eprintln!("timeline: {path} is not a scenario: {e}");
                std::process::exit(1);
            })
        }
        None => dmn_bench::timeline::pinned_scenario(),
    };
    let report = match dmn_bench::timeline::run_timeline(&scenario, &engine, &SolveRequest::new()) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("timeline: {e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = std::fs::write(&out, report.to_json().to_string_pretty()) {
        eprintln!("timeline: could not write {out}: {e}");
        std::process::exit(1);
    }
    let churn: usize = report.slots.iter().map(|s| s.warm_moved).sum();
    if !report.timeline_ok() {
        eprintln!(
            "timeline: warm chain LOST to cold on a slot (cold total {:.3}, warm total \
             {:.3}, see {out})",
            report.cold_total(),
            report.warm_total()
        );
        std::process::exit(1);
    }
    println!(
        "timeline: {} slots of '{}' through {engine}; cold total {:.3}, warm total {:.3} \
         ({} cold fallbacks), {} copies moved by the warm chain; {} dynamic strategies \
         replayed; artifact at {out}",
        report.slots.len(),
        report.scenario,
        report.cold_total(),
        report.warm_total(),
        report.warm_fallbacks,
        churn,
        report.dynamic.len()
    );
}

/// The differential scenario fuzzer: seeded random timeline scenarios
/// through the registry engines (dense/sparse approx, sharded, native
/// capacitated, tree-dp) with invariant checks; violations are minimized
/// and — with `--regress DIR` — written as replayable scenario JSON.
/// Exits non-zero when any case violates an invariant.
fn run_fuzz(args: &[String]) {
    let mut cfg = dmn_bench::fuzz::FuzzConfig::default();
    let mut out = "FUZZ_ci.json".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |what: &str| -> String {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("missing value for {what}");
                    usage()
                })
                .clone()
        };
        match arg.as_str() {
            "--cases" => cfg.cases = value("--cases").parse().unwrap_or_else(|_| usage()),
            "--seed" => cfg.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--regress" => cfg.regress_dir = Some(value("--regress").into()),
            "--out" => out = value("--out"),
            _ => usage(),
        }
    }
    let outcome = dmn_bench::fuzz::run_fuzz(&cfg);
    if let Err(e) = std::fs::write(&out, outcome.to_json().to_string_pretty()) {
        eprintln!("fuzz: could not write {out}: {e}");
        std::process::exit(1);
    }
    if !outcome.clean() {
        eprintln!(
            "fuzz: {} of {} cases VIOLATED an invariant (see {out}):",
            outcome.violations.len(),
            outcome.cases
        );
        for v in &outcome.violations {
            eprintln!("  case {} [{}] {}", v.case, v.kind, v.detail);
        }
        if let Some(dir) = &cfg.regress_dir {
            eprintln!("  minimized scenarios written to {}", dir.display());
        }
        std::process::exit(1);
    }
    println!(
        "fuzz: {} seeded timeline scenarios through {} engines ({}), zero panics, zero \
         invariant violations; artifact at {out}",
        outcome.cases,
        outcome.engines.len(),
        outcome.engines.join(", ")
    );
}

/// The standalone chaos gate: runs the seeded fault schedule against the
/// pinned smoke scenario, writes the `chaos` artifact, and exits non-zero
/// unless every injected fault class fired, was absorbed, and the healed
/// server's placements match from-scratch solves.
fn run_chaos(args: &[String]) {
    let mut out = "CHAOS_ci.json".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => {
                out = it
                    .next()
                    .unwrap_or_else(|| {
                        eprintln!("missing value for --out");
                        usage()
                    })
                    .clone();
            }
            _ => usage(),
        }
    }
    let lookups = cfg!(debug_assertions).then_some(20_000);
    let outcome =
        dmn_bench::chaos_replay::chaos_replay(&dmn_bench::perf_smoke::smoke_scenario(), lookups);
    if let Err(e) = std::fs::write(&out, outcome.to_json().to_string_pretty()) {
        eprintln!("chaos: could not write {out}: {e}");
        std::process::exit(1);
    }
    if !outcome.gate() {
        eprintln!(
            "chaos: replay FAILED — panics {}, stalls {}, floods {}, wire faults {}, \
             failures {} ({} timeouts), shed {}, malformed {}/{} rejected, wire \
             recovered {}, recovered {} in {:.2}s, inconsistent lookups {}, cost \
             matches scratch {} (see {out})",
            outcome.solver_panics,
            outcome.stalled_resolves,
            outcome.event_floods,
            outcome.wire_faults,
            outcome.resolve_failures,
            outcome.watchdog_timeouts,
            outcome.shed_deltas,
            outcome.malformed_rejected,
            outcome.malformed_lines,
            outcome.wire_recovered,
            outcome.recovered,
            outcome.recovery_seconds,
            outcome.inconsistent_lookups,
            outcome.cost_matches_scratch
        );
        std::process::exit(1);
    }
    println!(
        "chaos: absorbed {} solver panic(s), {} stalled re-solve(s) ({} watchdog \
         timeout(s)), {} event flood(s) shedding {} deltas, and {} malformed wire \
         line(s); recovered in {:.2}s; {} lookups served with 0 inconsistencies; \
         post-recovery costs equal from-scratch; artifact at {out}",
        outcome.solver_panics,
        outcome.stalled_resolves,
        outcome.watchdog_timeouts,
        outcome.event_floods,
        outcome.shed_deltas,
        outcome.malformed_lines,
        outcome.recovery_seconds,
        outcome.lookups
    );
}

/// The metrics exporter: replays the pinned scenario with telemetry
/// armed and writes the registry's full state — Prometheus text
/// exposition, the JSON snapshot, the span ring as JSONL — plus the
/// replay's own outcome (with lookup p50/p99) to `METRICS_ci.json`.
fn run_metrics(args: &[String]) {
    let mut out = "METRICS_ci.json".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => {
                out = it
                    .next()
                    .unwrap_or_else(|| {
                        eprintln!("missing value for --out");
                        usage()
                    })
                    .clone();
            }
            _ => usage(),
        }
    }
    use dmn_core::telemetry;
    telemetry::set_enabled(true);
    let lookups = cfg!(debug_assertions).then_some(30_000);
    let replay =
        dmn_bench::server_bench::replay_scenario(&dmn_bench::perf_smoke::smoke_scenario(), lookups);
    let doc = dmn_json::Json::obj([
        (
            "prometheus",
            dmn_json::Json::Str(telemetry::prometheus_text()),
        ),
        ("snapshot", telemetry::snapshot_json()),
        ("spans_jsonl", dmn_json::Json::Str(telemetry::spans_jsonl())),
        ("replay", replay.to_json()),
    ]);
    if let Err(e) = std::fs::write(&out, doc.to_string_pretty()) {
        eprintln!("metrics: could not write {out}: {e}");
        std::process::exit(1);
    }
    if replay.latency_samples == 0 {
        eprintln!("metrics: replay recorded no lookup latency samples (see {out})");
        std::process::exit(1);
    }
    println!(
        "metrics: {} lookups replayed, {} latency samples (p50 {:.2e}s, p99 {:.2e}s); \
         registry exported to {out}",
        replay.lookups, replay.latency_samples, replay.lookup_p50, replay.lookup_p99
    );
}

/// Benchmarks one registered solver across the standard scenario suite.
fn run_solver_bench(args: &[String]) {
    let mut name = None;
    let mut nodes = 36usize;
    let mut objects = 4usize;
    let mut seed = 7u64;
    let mut shards = 0usize;
    let mut partition = PartitionStrategy::default();
    let mut fl = FlSolverKind::default();
    let mut metric = MetricBackend::default();
    let mut cap_per_node: Option<usize> = None;
    let mut cap_engine: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |what: &str| -> String {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("missing value for {what}");
                    usage()
                })
                .clone()
        };
        match arg.as_str() {
            "--nodes" => nodes = value("--nodes").parse().unwrap_or_else(|_| usage()),
            "--objects" => objects = value("--objects").parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--shards" => shards = value("--shards").parse().unwrap_or_else(|_| usage()),
            "--partition" => {
                let v = value("--partition");
                partition = PartitionStrategy::parse(&v).unwrap_or_else(|| {
                    eprintln!(
                        "unknown partition strategy '{v}' (use {})",
                        PartitionStrategy::ALL.map(|s| s.name()).join(", ")
                    );
                    usage()
                });
            }
            "--fl" => {
                let v = value("--fl");
                fl = FlSolverKind::parse(&v).unwrap_or_else(|| {
                    eprintln!(
                        "unknown phase-1 solver '{v}' (use {})",
                        FlSolverKind::ALL.map(|k| k.name()).join(", ")
                    );
                    usage()
                });
            }
            "--metric" => {
                let v = value("--metric");
                metric = MetricBackend::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown metric backend '{v}' (use dense, sparse)");
                    usage()
                });
            }
            "--capacities" => {
                let v = value("--capacities");
                let Some(k) = v.strip_prefix("uniform:").and_then(|k| k.parse().ok()) else {
                    eprintln!("bad --capacities '{v}' (use uniform:<copies-per-node>)");
                    usage()
                };
                cap_per_node = Some(k);
            }
            "--cap-engine" => cap_engine = Some(value("--cap-engine")),
            other if name.is_none() => name = Some(other.to_string()),
            _ => usage(),
        }
    }
    // --cap-engine INNER is shorthand for --solver cap:INNER.
    let name = match cap_engine {
        Some(inner) => format!("cap:{inner}"),
        None => match name {
            Some(name) => name,
            None => usage(),
        },
    };

    if name == "list" {
        println!("{:<18} description", "name");
        for s in solvers::all() {
            println!("{:<18} {}", s.name(), s.description());
        }
        return;
    }
    let solver = match solvers::resolve(&name) {
        Ok(solver) => solver,
        Err(why) => {
            eprintln!("{why} (registered: {})", solvers::names().join(", "));
            std::process::exit(2);
        }
    };

    // Grid dims chosen so rows * cols >= nodes stays comparable to the
    // other topologies (rather than silently truncating to a square).
    let rows = nodes.max(4).isqrt();
    let cols = nodes.max(4).div_ceil(rows);
    let suite = [
        ("grid", TopologyKind::Grid { rows, cols }),
        ("random-tree", TopologyKind::RandomTree),
        ("gnp", TopologyKind::Gnp),
        ("transit-stub", TopologyKind::TransitStub),
    ];
    let req = SolveRequest::new()
        .seed(seed)
        .shards(shards)
        .partition(partition)
        .fl_solver(fl)
        .metric_backend(metric);
    println!("solver: {} — {}\n", solver.name(), solver.description());
    for (label, topology) in suite {
        let scenario = Scenario {
            name: label.into(),
            topology,
            nodes,
            storage_cost: 4.0,
            workload: WorkloadParams {
                num_objects: objects,
                base_mass: 120.0,
                write_fraction: 0.2,
                ..Default::default()
            },
            seed,
            capacities: cap_per_node
                .map(|per_node| dmn_workloads::CapacitySpec::Uniform { per_node }),
            stream: None,
            drift: None,
            faults: None,
            timeline: None,
        };
        let instance = scenario.build_instance();
        let req = match scenario.capacity_vector(instance.num_nodes()) {
            Some(cap) => req.clone().capacities(cap),
            None => req.clone(),
        };
        match solver.supports(&instance) {
            Ok(()) => {
                let report = solver.solve(&instance, &req);
                println!("== scenario {label} ({} nodes) ==", instance.num_nodes());
                print!("{report}");
                println!();
            }
            Err(why) => {
                println!("== scenario {label}: skipped ({why}) ==\n");
            }
        }
    }
}
