//! Experiment harness entry point.
//!
//! ```text
//! cargo run --release -p dmn-bench --bin experiments -- all
//! cargo run --release -p dmn-bench --bin experiments -- e2 e4
//! ```
//!
//! Reports print to stdout and are persisted as JSON under `results/`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: experiments <e1..e10 | all>...");
        std::process::exit(2);
    }
    for id in &args {
        for report in dmn_bench::experiments::run(id) {
            report.emit();
        }
    }
}
