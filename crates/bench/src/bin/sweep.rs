//! The corpus-wide solver + strategy sweep.
//!
//! Runs **every** solver of the `dmn-solve` registry (probing
//! `Solver::supports`, so `tree-dp` runs on the tree scenarios and the
//! exhaustive engines on the small ones) and **every** online strategy of
//! the dynamic zoo (raced against the `approx` oracle through the dynamic
//! bridge, plus per-engine oracle reference costs) across the committed
//! `scenarios/` corpus, and emits one JSON report.
//!
//! ```text
//! cargo run --release -p dmn-bench --bin sweep -- --out SWEEP.json
//! cargo run --release -p dmn-bench --bin sweep -- ring_small tree_uniform
//! cargo run --release -p dmn-bench --bin sweep -- --dir my/scenarios --out S.json
//! ```
//!
//! Positional arguments filter the corpus by file stem or scenario name;
//! no filter sweeps every `*.json` in the directory.

use std::path::PathBuf;

use dmn_dynamic::bridge::{compete_standard, StaticOracle};
use dmn_dynamic::sim::static_cost_on_stream;
use dmn_dynamic::stream::{sample_stream, StreamConfig};
use dmn_json::Json;
use dmn_solve::{solvers, SolveRequest};
use dmn_workloads::Scenario;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Node ceiling of the unfiltered sweep. Every row dense-solves through
/// the full registry (an O(n^2) closure per scenario), so the committed
/// 10k-node sparse scenario is skipped unless named explicitly — naming
/// it opts into the multi-hundred-megabyte dense closure on purpose.
const DENSE_SWEEP_NODE_CAP: usize = 2_000;

fn usage() -> ! {
    eprintln!(
        "usage: sweep [--out PATH] [--dir DIR] [scenario names...]\n\n\
         Sweeps every registry solver and every dynamic strategy across the\n\
         scenarios/ corpus (optionally filtered by file stem or scenario\n\
         name) and writes one JSON report (default SWEEP.json). Scenarios\n\
         beyond {DENSE_SWEEP_NODE_CAP} nodes are skipped unless named explicitly (the sweep\n\
         dense-solves every row)."
    );
    std::process::exit(2);
}

fn main() {
    let mut out = "SWEEP.json".to_string();
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios");
    let mut filters: Vec<String> = Vec::new();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |what: &str| -> String {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("missing value for {what}");
                    usage()
                })
                .clone()
        };
        match arg.as_str() {
            "--out" => out = value("--out"),
            "--dir" => dir = PathBuf::from(value("--dir")),
            other if other.starts_with("--") => usage(),
            other => filters.push(other.to_string()),
        }
    }

    let corpus = Scenario::load_corpus(&dir).unwrap_or_else(|e| panic!("{e}"));

    // Resolve the filters up front (every filter must name a scenario)
    // so a typo fails fast instead of after the sweep work is done.
    let mut matched = vec![false; filters.len()];
    let selected: Vec<&(String, Scenario)> = corpus
        .iter()
        .filter(|(stem, scenario)| {
            if filters.is_empty() {
                if scenario.nodes > DENSE_SWEEP_NODE_CAP {
                    eprintln!(
                        "skipping {} ({} nodes > {DENSE_SWEEP_NODE_CAP}; name it explicitly \
                         to dense-sweep it anyway)",
                        scenario.name, scenario.nodes
                    );
                    return false;
                }
                return true;
            }
            let mut hit = false;
            for (i, f) in filters.iter().enumerate() {
                if f == stem || f == &scenario.name {
                    matched[i] = true;
                    hit = true;
                }
            }
            hit
        })
        .collect();
    for (i, hit) in matched.iter().enumerate() {
        assert!(
            *hit,
            "no scenario in {} matches '{}'",
            dir.display(),
            filters[i]
        );
    }
    assert!(!selected.is_empty(), "nothing to sweep");

    let mut scenario_docs = Vec::new();
    for (stem, scenario) in selected {
        eprintln!("sweeping {} ({stem})", scenario.name);
        scenario_docs.push(sweep_scenario(scenario));
    }

    let doc = Json::obj([
        ("generated_by", Json::Str("sweep".into())),
        (
            "registry",
            Json::obj([
                (
                    "names",
                    Json::arr(solvers::names().iter().map(|n| Json::Str(n.to_string()))),
                ),
                (
                    "base_names",
                    Json::arr(
                        solvers::base_names()
                            .iter()
                            .map(|n| Json::Str(n.to_string())),
                    ),
                ),
            ]),
        ),
        ("scenarios", Json::Arr(scenario_docs)),
    ]);
    std::fs::write(&out, doc.to_string_pretty()).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("sweep: wrote {out}");
}

/// One scenario through every registry solver and the dynamic harness.
fn sweep_scenario(scenario: &Scenario) -> Json {
    let instance = scenario.build_instance();
    let n = instance.num_nodes();
    let objects = instance.num_objects();
    let cap = scenario.capacity_vector(n);
    let mut req = SolveRequest::new();
    if let Some(cap) = &cap {
        req = req.capacities(cap.clone());
    }

    // Static: every registry engine, probed. Supported engines emit the
    // shared `SolveReport::to_json` document (same field names as the
    // perf-smoke artifact and the server status endpoint).
    let static_rows = Json::arr(solvers::all().iter().map(
        |solver| match solver.supports(&instance) {
            Ok(()) => {
                let report = solver.solve(&instance, &req);
                let mut row = report.to_json();
                if let Json::Obj(map) = &mut row {
                    map.insert("supported".into(), Json::Bool(true));
                }
                row
            }
            Err(why) => Json::obj([
                ("solver", Json::Str(solver.name().to_string())),
                ("supported", Json::Bool(false)),
                ("reason", Json::Str(why.to_string())),
            ]),
        },
    ));

    // Dynamic: one stream per the scenario's spec, the full zoo against
    // the approx oracle, plus every registry engine as an oracle reference.
    let spec = scenario.stream_spec();
    let mut rng = ChaCha8Rng::seed_from_u64(scenario.seed ^ 0xD15EA5E);
    let stream = sample_stream(
        &instance.objects,
        &StreamConfig {
            length: spec.length,
            phases: spec.phases,
            phase_shift: spec.phase_shift,
        },
        &mut rng,
    );
    let phase_len = spec.length.div_ceil(spec.phases.max(1));
    let oracle = StaticOracle::approx().request(req.clone());
    let competition = compete_standard(&instance, &stream, &oracle, phase_len)
        .expect("approx oracle runs on any network");
    print!("{competition}");

    let emp = dmn_dynamic::stream::empirical_workloads(&stream, objects, n);
    let oracle_refs = Json::arr(solvers::names().iter().map(|&name| {
        let oracle = StaticOracle::with_engine(name)
            .expect("registered")
            .request(req.clone());
        match oracle.place_on(&instance, &emp) {
            Ok(placement) => {
                let cost = static_cost_on_stream(
                    instance.metric(),
                    &instance.storage_cost,
                    &placement,
                    &stream,
                );
                Json::obj([
                    ("engine", Json::Str(name.to_string())),
                    ("supported", Json::Bool(true)),
                    ("total", Json::Num(cost.total())),
                ])
            }
            Err(why) => Json::obj([
                ("engine", Json::Str(name.to_string())),
                ("supported", Json::Bool(false)),
                ("reason", Json::Str(why.to_string())),
            ]),
        }
    }));

    Json::obj([
        ("name", Json::Str(scenario.name.clone())),
        ("nodes", Json::Num(n as f64)),
        ("objects", Json::Num(objects as f64)),
        ("capacitated", Json::Bool(cap.is_some())),
        ("static", static_rows),
        (
            "dynamic",
            Json::obj([
                (
                    "stream",
                    Json::obj([
                        ("length", Json::Num(spec.length as f64)),
                        ("phases", Json::Num(spec.phases as f64)),
                        ("phase_shift", Json::Num(spec.phase_shift as f64)),
                    ]),
                ),
                ("oracle_refs", oracle_refs),
                ("competition", competition.to_json()),
            ]),
        ),
    ])
}
