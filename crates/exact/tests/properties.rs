//! Seeded property tests for the exact solvers: structural invariants
//! against independent implementations (deterministic seed sweep; the
//! offline build vendors its own RNG instead of proptest).

use dmn_core::cost::{evaluate_object, UpdatePolicy};
use dmn_core::instance::ObjectWorkload;
use dmn_exact::{optimal_placement, optimal_restricted, SteinerTable};
use dmn_facility::{exact as ufl_exact, FlInstance};
use dmn_graph::dijkstra::apsp;
use dmn_graph::generators;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const CASES: u64 = 32;

fn random_instance(n: usize, seed: u64) -> (dmn_graph::Metric, Vec<f64>, ObjectWorkload) {
    let mut r = ChaCha8Rng::seed_from_u64(seed);
    let g = generators::gnp_connected(n, 0.45, (1.0, 6.0), &mut r);
    let m = apsp(&g);
    let cs: Vec<f64> = (0..n).map(|_| r.random_range(0.5..6.0)).collect();
    let mut w = ObjectWorkload::new(n);
    for v in 0..n {
        if r.random_bool(0.8) {
            w.reads[v] = r.random_range(0..4) as f64;
        }
        if r.random_bool(0.4) {
            w.writes[v] = r.random_range(0..3) as f64;
        }
    }
    if w.total_requests() == 0.0 {
        w.reads[0] = 1.0;
    }
    (m, cs, w)
}

/// With no writes, the exact data-management optimum coincides with the
/// exact UFL optimum (the problems are identical).
#[test]
fn read_only_equals_ufl() {
    for seed in 0..CASES {
        let mut r = ChaCha8Rng::seed_from_u64(200_000 + seed);
        let n = r.random_range(4..9);
        let (m, cs, mut w) = random_instance(n, seed);
        for v in 0..n {
            w.writes[v] = 0.0;
        }
        if w.total_requests() == 0.0 {
            w.reads[0] = 1.0;
        }
        let dm = optimal_placement(&m, &cs, &w);
        let fl = ufl_exact(&FlInstance::new(&m, cs.clone(), w.request_masses()));
        assert!((dm.cost - fl.cost).abs() < 1e-9, "seed {seed}");
        assert_eq!(dm.copies, fl.open, "seed {seed}");
    }
}

/// The reported optimal cost is realized by the evaluator on the
/// returned copy set, and no singleton placement beats it.
#[test]
fn optimum_is_consistent_and_minimal() {
    for seed in 0..CASES {
        let mut r = ChaCha8Rng::seed_from_u64(210_000 + seed);
        let n = r.random_range(4..9);
        let (m, cs, w) = random_instance(n, seed);
        let opt = optimal_placement(&m, &cs, &w);
        let realized = evaluate_object(&m, &cs, &w, &opt.copies, UpdatePolicy::ExactSteiner);
        assert!((realized.total() - opt.cost).abs() < 1e-9, "seed {seed}");
        for v in 0..n {
            let single = evaluate_object(&m, &cs, &w, &[v], UpdatePolicy::ExactSteiner);
            assert!(single.total() + 1e-9 >= opt.cost, "seed {seed}: node {v}");
        }
    }
}

/// Lemma 1 sandwich: OPT <= OPT_restricted <= 4 OPT.
#[test]
fn lemma1_sandwich() {
    for seed in 0..CASES {
        let mut r = ChaCha8Rng::seed_from_u64(220_000 + seed);
        let n = r.random_range(4..9);
        let (m, cs, w) = random_instance(n, seed);
        let opt = optimal_placement(&m, &cs, &w);
        let rst = optimal_restricted(&m, &cs, &w);
        assert!(rst.cost + 1e-9 >= opt.cost, "seed {seed}");
        assert!(
            rst.cost <= 4.0 * opt.cost + 1e-9,
            "seed {seed}: Lemma 1 violated: {} > 4 * {}",
            rst.cost,
            opt.cost
        );
    }
}

/// Steiner-table weights are monotone and subadditive over subsets.
#[test]
fn steiner_table_monotone_subadditive() {
    for seed in 0..CASES {
        let mut r = ChaCha8Rng::seed_from_u64(230_000 + seed);
        let n = r.random_range(3..9);
        let g = generators::gnp_connected(n, 0.5, (1.0, 5.0), &mut r);
        let m = apsp(&g);
        let t = SteinerTable::new(&m);
        let full = (1usize << n) - 1;
        for mask in 1usize..=full.min(255) {
            let sub = mask & (mask >> 1);
            // Monotonicity: a subset never costs more.
            assert!(
                t.steiner_mask(sub) <= t.steiner_mask(mask) + 1e-9,
                "seed {seed}: mask {mask:#b}"
            );
        }
        // Subadditivity when the sets share a node.
        let a = 0b0111 & full;
        let b = 0b0110 & full;
        if (a & b) != 0 {
            assert!(
                t.steiner_mask(a | b) <= t.steiner_mask(a) + t.steiner_mask(b) + 1e-9,
                "seed {seed}"
            );
        }
    }
}
