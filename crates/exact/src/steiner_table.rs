//! All-subset minimum Steiner tree weights via one Dreyfus–Wagner sweep.

use dmn_graph::Metric;

/// Largest node count the table will accept (`3^n` work, `2^n · n` memory).
pub const MAX_NODES: usize = 17;

/// Minimum Steiner tree weights for every subset of a small metric.
///
/// Internally runs Dreyfus–Wagner with *all* nodes as terminals: the DP
/// table `dp[S][v]` (cheapest tree spanning subset `S` plus node `v`)
/// then answers `steiner(T)` for any `T` by splitting off one terminal.
#[derive(Debug)]
pub struct SteinerTable {
    n: usize,
    /// `dp[S * n + v]` over subsets `S` of nodes `0..n-1` (node `n-1` is
    /// the DW root and is excluded from masks).
    dp: Vec<f64>,
}

impl SteinerTable {
    /// Builds the table. `O(3^n · n + 2^n · n^2)` time, `O(2^n · n)` memory.
    ///
    /// # Panics
    /// Panics when the metric has more than [`MAX_NODES`] points or fewer
    /// than 1.
    pub fn new(metric: &Metric) -> Self {
        let n = metric.len();
        assert!(
            (1..=MAX_NODES).contains(&n),
            "SteinerTable supports 1..={MAX_NODES} nodes"
        );
        let k = n - 1; // nodes 0..k are mask bits; node k is the root side
        let full: usize = (1usize << k) - 1;
        let mut dp = vec![f64::INFINITY; (full + 1) * n];
        for v in 0..n {
            dp[v] = 0.0;
        }
        for i in 0..k {
            let s = 1usize << i;
            for v in 0..n {
                dp[s * n + v] = metric.dist(i, v);
            }
        }
        for s in 1..=full {
            if s.count_ones() <= 1 {
                continue;
            }
            let low = s & s.wrapping_neg();
            let rest = s ^ low;
            // Merge two sub-trees at v (fix the lowest bit in one side).
            let mut sub = rest;
            loop {
                let a = sub | low;
                let b = s ^ a;
                if b != 0 {
                    for v in 0..n {
                        let cand = dp[a * n + v] + dp[b * n + v];
                        if cand < dp[s * n + v] {
                            dp[s * n + v] = cand;
                        }
                    }
                }
                if sub == 0 {
                    break;
                }
                sub = (sub - 1) & rest;
            }
            // One metric relaxation round (closed under triangle inequality).
            let row_start = s * n;
            let snapshot: Vec<f64> = dp[row_start..row_start + n].to_vec();
            for v in 0..n {
                let mut best = snapshot[v];
                for (u, &su) in snapshot.iter().enumerate() {
                    let cand = su + metric.dist(u, v);
                    if cand < best {
                        best = cand;
                    }
                }
                dp[row_start + v] = best;
            }
        }
        SteinerTable { n, dp }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the table covers no nodes (never constructed that way).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Minimum Steiner tree weight connecting the nodes in `mask`
    /// (bit `v` set = node `v` is a terminal). 0 for at most one terminal.
    pub fn steiner_mask(&self, mask: usize) -> f64 {
        debug_assert!(mask < (1usize << self.n));
        if mask.count_ones() <= 1 {
            return 0.0;
        }
        let root_bit = 1usize << (self.n - 1);
        if mask & root_bit != 0 {
            // dp is rooted at node n-1.
            self.dp[(mask ^ root_bit) * self.n + (self.n - 1)]
        } else {
            // Split off the highest terminal as the root side.
            let v = (usize::BITS - 1 - mask.leading_zeros()) as usize;
            self.dp[(mask ^ (1usize << v)) * self.n + v]
        }
    }

    /// Steiner weight for an explicit terminal list.
    pub fn steiner(&self, terminals: &[usize]) -> f64 {
        let mut mask = 0usize;
        for &t in terminals {
            mask |= 1 << t;
        }
        self.steiner_mask(mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmn_graph::dijkstra::apsp;
    use dmn_graph::generators;
    use dmn_graph::steiner::dreyfus_wagner;

    #[test]
    fn matches_per_call_dreyfus_wagner() {
        let g = generators::grid(2, 4, |u, v| ((u * 3 + v) % 4 + 1) as f64);
        let m = apsp(&g);
        let table = SteinerTable::new(&m);
        for mask in 0usize..(1 << 8) {
            let terms: Vec<usize> = (0..8).filter(|&v| mask >> v & 1 == 1).collect();
            let want = dreyfus_wagner(&m, &terms);
            let got = table.steiner_mask(mask);
            assert!(
                (want - got).abs() < 1e-9,
                "mask {mask:#b}: want {want}, got {got}"
            );
        }
    }

    #[test]
    fn star_center_as_steiner_point() {
        let g = generators::star(5, |_| 1.0);
        let m = apsp(&g);
        let table = SteinerTable::new(&m);
        // All four leaves: tree through the hub, weight 4.
        assert!((table.steiner(&[1, 2, 3, 4]) - 4.0).abs() < 1e-9);
        // Two leaves: path through hub, weight 2.
        assert!((table.steiner(&[1, 2]) - 2.0).abs() < 1e-9);
        assert_eq!(table.steiner(&[3]), 0.0);
        assert_eq!(table.steiner(&[]), 0.0);
    }
}
