//! Exhaustive optimal and optimal-restricted placement solvers.

use dmn_core::instance::ObjectWorkload;
use dmn_graph::flow::{min_cost_circulation, ArcSpec};
use dmn_graph::{Metric, NodeId};

use crate::steiner_table::SteinerTable;

/// Maximum node count for the exhaustive solvers.
pub const MAX_EXACT_NODES: usize = 16;

/// An exact solution: the optimal copy set and its cost.
#[derive(Debug, Clone, PartialEq)]
pub struct ExactSolution {
    /// Optimal copy set (sorted).
    pub copies: Vec<NodeId>,
    /// Its total cost.
    pub cost: f64,
}

/// The true optimum of the static data management problem: enumerates every
/// non-empty copy set; reads go to the nearest copy, every write uses an
/// optimal update set (minimum Steiner tree over its home plus all copies).
///
/// `O(2^n · n)` after one `O(3^n · n)` Steiner sweep.
///
/// # Panics
/// Panics beyond [`MAX_EXACT_NODES`] nodes.
pub fn optimal_placement(
    metric: &Metric,
    storage_cost: &[f64],
    workload: &ObjectWorkload,
) -> ExactSolution {
    let n = metric.len();
    assert!(
        n <= MAX_EXACT_NODES,
        "exhaustive solver limited to {MAX_EXACT_NODES} nodes"
    );
    let table = SteinerTable::new(metric);
    let readers: Vec<(usize, f64)> = collect(workload.reads.iter());
    let writers: Vec<(usize, f64)> = collect(workload.writes.iter());

    let mut best_mask = 0usize;
    let mut best_cost = f64::INFINITY;
    for mask in 1usize..(1 << n) {
        let mut cost = 0.0;
        for v in 0..n {
            if mask >> v & 1 == 1 {
                cost += storage_cost[v];
            }
        }
        if cost >= best_cost {
            continue;
        }
        for &(v, f) in &readers {
            cost += f * nearest_in_mask(metric, v, mask);
            if cost >= best_cost {
                break;
            }
        }
        if cost >= best_cost {
            continue;
        }
        for &(v, f) in &writers {
            cost += f * table.steiner_mask(mask | (1 << v));
            if cost >= best_cost {
                break;
            }
        }
        if cost < best_cost {
            best_cost = cost;
            best_mask = mask;
        }
    }
    ExactSolution {
        copies: mask_to_nodes(best_mask, n),
        cost: best_cost,
    }
}

/// The optimal *restricted* placement (Lemma 1): all writes share one
/// multicast tree (the optimal one — a minimum Steiner tree over the copy
/// set), and every copy must serve at least `W` request mass. Request
/// assignment under that constraint is solved exactly as a lower-bounded
/// transportation problem.
///
/// # Panics
/// Panics beyond [`MAX_EXACT_NODES`] nodes.
pub fn optimal_restricted(
    metric: &Metric,
    storage_cost: &[f64],
    workload: &ObjectWorkload,
) -> ExactSolution {
    let n = metric.len();
    assert!(
        n <= MAX_EXACT_NODES,
        "exhaustive solver limited to {MAX_EXACT_NODES} nodes"
    );
    let table = SteinerTable::new(metric);
    let w_total = workload.total_writes();
    let requests: Vec<(usize, f64)> = collect(
        workload
            .reads
            .iter()
            .zip(&workload.writes)
            .map(|(r, w)| r + w)
            .collect::<Vec<_>>()
            .iter(),
    );
    let total_mass: f64 = requests.iter().map(|&(_, m)| m).sum();

    let mut best_mask = 0usize;
    let mut best_cost = f64::INFINITY;
    for mask in 1usize..(1 << n) {
        let copies = mask_to_nodes(mask, n);
        // Infeasible: cannot give W mass to every copy.
        if w_total * copies.len() as f64 > total_mass + 1e-9 {
            continue;
        }
        let mut cost: f64 = copies.iter().map(|&v| storage_cost[v]).sum();
        cost += w_total * table.steiner_mask(mask);
        if cost >= best_cost {
            continue;
        }
        cost += match assignment_cost(metric, &requests, &copies, w_total) {
            Some(c) => c,
            None => continue,
        };
        if cost < best_cost {
            best_cost = cost;
            best_mask = mask;
        }
    }
    assert!(
        best_cost.is_finite(),
        "a single copy serving everything is always feasible"
    );
    ExactSolution {
        copies: mask_to_nodes(best_mask, n),
        cost: best_cost,
    }
}

/// Cheapest assignment of request mass to copies with at least `w_total`
/// mass per copy. Fast path: nearest assignment when it is already
/// feasible; otherwise a min-cost transportation with lower bounds.
fn assignment_cost(
    metric: &Metric,
    requests: &[(usize, f64)],
    copies: &[NodeId],
    w_total: f64,
) -> Option<f64> {
    // Nearest assignment and per-copy service.
    let mut served = vec![0.0; copies.len()];
    let mut nearest_cost = 0.0;
    for &(v, m) in requests {
        let (c, d) = metric.nearest_in(v, copies).expect("non-empty");
        let idx = copies.iter().position(|&x| x == c).unwrap();
        served[idx] += m;
        nearest_cost += m * d;
    }
    if w_total == 0.0 || served.iter().all(|&s| s + 1e-9 >= w_total) {
        return Some(nearest_cost);
    }
    // Transportation with lower bounds: s -> client (fixed mass),
    // client -> copy (metric cost), copy -> t (lower bound W), t -> s.
    let m = requests.len();
    let k = copies.len();
    let s = 0usize;
    let t = 1 + m + k;
    let mut arcs = Vec::with_capacity(1 + m + m * k + k);
    for (j, &(_, mass)) in requests.iter().enumerate() {
        arcs.push(ArcSpec {
            u: s,
            v: 1 + j,
            lower: mass,
            upper: mass,
            cost: 0.0,
        });
    }
    for (j, &(v, _)) in requests.iter().enumerate() {
        for (i, &c) in copies.iter().enumerate() {
            arcs.push(ArcSpec {
                u: 1 + j,
                v: 1 + m + i,
                lower: 0.0,
                upper: f64::INFINITY,
                cost: metric.dist(v, c),
            });
        }
    }
    for i in 0..k {
        arcs.push(ArcSpec {
            u: 1 + m + i,
            v: t,
            lower: w_total,
            upper: f64::INFINITY,
            cost: 0.0,
        });
    }
    arcs.push(ArcSpec {
        u: t,
        v: s,
        lower: 0.0,
        upper: f64::INFINITY,
        cost: 0.0,
    });
    min_cost_circulation(t + 1, &arcs).map(|(c, _)| c)
}

fn collect<'a>(iter: impl Iterator<Item = &'a f64>) -> Vec<(usize, f64)> {
    iter.enumerate()
        .filter(|&(_, &f)| f > 0.0)
        .map(|(v, &f)| (v, f))
        .collect()
}

fn nearest_in_mask(metric: &Metric, v: usize, mask: usize) -> f64 {
    let row = metric.row(v);
    let mut best = f64::INFINITY;
    let mut m = mask;
    while m != 0 {
        let c = m.trailing_zeros() as usize;
        if row[c] < best {
            best = row[c];
        }
        m &= m - 1;
    }
    best
}

fn mask_to_nodes(mask: usize, n: usize) -> Vec<NodeId> {
    (0..n).filter(|&v| mask >> v & 1 == 1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmn_core::cost::{evaluate_object, UpdatePolicy};
    use dmn_graph::dijkstra::apsp;
    use dmn_graph::generators;

    #[test]
    fn read_only_matches_facility_location() {
        // With no writes, the problem *is* UFL.
        let g = generators::path(5, |_| 2.0);
        let m = apsp(&g);
        let cs = vec![3.0; 5];
        let mut w = ObjectWorkload::new(5);
        for v in 0..5 {
            w.reads[v] = 1.0;
        }
        let sol = optimal_placement(&m, &cs, &w);
        let check = evaluate_object(&m, &cs, &w, &sol.copies, UpdatePolicy::ExactSteiner);
        assert!((check.total() - sol.cost).abs() < 1e-9);
        // UFL exact agreement.
        let fl = dmn_facility::FlInstance::new(&m, cs.clone(), w.request_masses());
        let ufl = dmn_facility::exact(&fl);
        assert!((ufl.cost - sol.cost).abs() < 1e-9);
        assert_eq!(ufl.open, sol.copies);
    }

    #[test]
    fn heavy_writes_force_single_copy() {
        let g = generators::path(4, |_| 1.0);
        let m = apsp(&g);
        let cs = vec![0.1; 4];
        let mut w = ObjectWorkload::new(4);
        for v in 0..4 {
            w.reads[v] = 0.5;
        }
        w.writes[1] = 100.0;
        let sol = optimal_placement(&m, &cs, &w);
        assert_eq!(sol.copies, vec![1], "writer-local single copy");
    }

    #[test]
    fn exact_cost_agrees_with_evaluator() {
        let g = generators::grid(2, 3, |u, v| ((u + v) % 2 + 1) as f64);
        let m = apsp(&g);
        let cs = vec![2.0, 1.0, 3.0, 1.0, 2.0, 1.0];
        let mut w = ObjectWorkload::new(6);
        w.reads[0] = 2.0;
        w.reads[5] = 1.0;
        w.writes[2] = 1.5;
        let sol = optimal_placement(&m, &cs, &w);
        let check = evaluate_object(&m, &cs, &w, &sol.copies, UpdatePolicy::ExactSteiner);
        assert!((check.total() - sol.cost).abs() < 1e-9);
        // Optimality: no other subset beats it.
        for mask in 1usize..(1 << 6) {
            let copies = mask_to_nodes(mask, 6);
            let c = evaluate_object(&m, &cs, &w, &copies, UpdatePolicy::ExactSteiner);
            assert!(c.total() + 1e-9 >= sol.cost, "subset {copies:?} beats opt");
        }
    }

    #[test]
    fn restricted_at_least_optimal_and_within_factor_4() {
        // Lemma 1 on concrete instances: OPT <= OPT_W <= 4 OPT.
        let g = generators::grid(2, 3, |_, _| 1.0);
        let m = apsp(&g);
        for (cs_val, wmass) in [(0.5, 1.0), (2.0, 4.0), (5.0, 0.5)] {
            let cs = vec![cs_val; 6];
            let mut w = ObjectWorkload::new(6);
            for v in 0..6 {
                w.reads[v] = 1.0;
            }
            w.writes[3] = wmass;
            let opt = optimal_placement(&m, &cs, &w);
            let rst = optimal_restricted(&m, &cs, &w);
            assert!(
                rst.cost + 1e-9 >= opt.cost,
                "restricted can't beat unrestricted"
            );
            assert!(
                rst.cost <= 4.0 * opt.cost + 1e-9,
                "Lemma 1 violated: {} > 4 * {}",
                rst.cost,
                opt.cost
            );
        }
    }

    #[test]
    fn restricted_single_copy_feasible_when_writes_dominate() {
        // W nearly equals total mass: only 1 copy is feasible.
        let m = Metric::from_line(&[0.0, 1.0, 2.0]);
        let cs = vec![0.0; 3];
        let mut w = ObjectWorkload::new(3);
        w.writes[0] = 5.0;
        w.reads[2] = 1.0;
        let rst = optimal_restricted(&m, &cs, &w);
        assert_eq!(rst.copies.len(), 1, "{:?}", rst.copies);
    }

    #[test]
    fn restricted_assignment_uses_flow_when_nearest_is_infeasible() {
        // Two copies, all mass close to copy 0, W forces sharing.
        let m = Metric::from_line(&[0.0, 0.5, 10.0]);
        let requests = vec![(0usize, 3.0), (1usize, 3.0)];
        let copies = vec![0usize, 2usize];
        // Nearest assignment: copy 2 serves nothing < W = 3.
        let c = assignment_cost(&m, &requests, &copies, 3.0).expect("feasible");
        // Optimal constrained: send the node-1 mass (3.0) to copy 2:
        // 3 * 9.5 = 28.5; node-0 mass stays: 0.
        assert!((c - 28.5).abs() < 1e-9, "c = {c}");
    }
}
