//! Exact (exponential-time) reference solvers for the static data
//! management problem on validation-scale instances.
//!
//! The problem is NP-hard on general networks, so the paper offers no exact
//! polynomial algorithm — but measuring the approximation factor of the
//! Section-2 algorithm (experiment E2) and the Lemma-1 factor-4 bound (E1)
//! requires ground truth. This crate provides it by enumeration:
//!
//! * [`SteinerTable`] — minimum Steiner tree weights for *every* node
//!   subset at once (one Dreyfus–Wagner sweep, `O(3^n · n)`),
//! * [`optimal_placement`] — the true optimum: per-write optimal update
//!   sets (minimum Steiner trees over home + copies),
//! * [`optimal_restricted`] — the optimal *restricted* placement of
//!   Lemma 1: one shared multicast tree and at least `W` request mass per
//!   copy, with the assignment solved as a lower-bounded transportation
//!   problem (min-cost flow).
//!
//! Everything here is exponential in `n`; guard rails refuse instances
//! beyond ~16 nodes.

// Node ids are dense indices throughout this workspace; looping over
// `0..n` and indexing by node id is the domain idiom.
#![allow(clippy::needless_range_loop)]

pub mod solver;
pub mod steiner_table;

pub use solver::{optimal_placement, optimal_restricted, ExactSolution, MAX_EXACT_NODES};
pub use steiner_table::SteinerTable;
