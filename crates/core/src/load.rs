//! Per-link loads and congestion of a placement.
//!
//! The paper's cost model generalizes the *total communication load* model
//! and is contrasted with *congestion* minimization (Maggs et al.). This
//! module materializes per-edge traffic under the MST-multicast policy:
//!
//! * reads and write-serve legs route along shortest paths to the nearest
//!   copy,
//! * multicast updates route along the metric MST of the copy set, with
//!   every metric edge expanded to a shortest path in the network.
//!
//! Invariant (tested): `Σ_e load(e) · ct(e)` equals the evaluator's
//! `read + update` cost exactly — the two accountings are independent
//! implementations of the same model. Congestion here is
//! `max_e load(e) · ct(e)`; with `ct = 1/bandwidth` this is the classical
//! `max_e load(e)/bw(e)`.

use dmn_graph::dijkstra::{shortest_paths, ShortestPaths};
use dmn_graph::mst::metric_mst;
use dmn_graph::{EdgeId, Graph, NodeId};

use crate::instance::Instance;
use crate::placement::Placement;

/// Per-edge traffic of a placement (indexed by [`EdgeId`]).
#[derive(Debug, Clone)]
pub struct EdgeLoads {
    /// Units of data crossing each edge.
    pub load: Vec<f64>,
}

impl EdgeLoads {
    /// Total communication load weighted by transmission costs:
    /// `Σ_e load(e) · ct(e)`.
    pub fn weighted_total(&self, g: &Graph) -> f64 {
        self.load
            .iter()
            .enumerate()
            .map(|(e, l)| l * g.edge(e).w)
            .sum()
    }

    /// Congestion: the maximum of `load(e) · ct(e)` over all edges
    /// (`load/bandwidth` when `ct = 1/bandwidth`).
    pub fn congestion(&self, g: &Graph) -> f64 {
        self.load
            .iter()
            .enumerate()
            .map(|(e, l)| l * g.edge(e).w)
            .fold(0.0, f64::max)
    }

    /// The most loaded edge (by weighted load) and its value.
    pub fn hottest_edge(&self, g: &Graph) -> Option<(EdgeId, f64)> {
        (0..self.load.len())
            .map(|e| (e, self.load[e] * g.edge(e).w))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN"))
    }
}

/// Computes per-edge loads of a placement under the MST-multicast policy.
///
/// `O(n (n + m) log n)` for the shortest-path trees plus `O(requests)`
/// path walks.
pub fn edge_loads(instance: &Instance, placement: &Placement) -> EdgeLoads {
    let g = &instance.graph;
    let n = g.num_nodes();
    let metric = instance.metric();
    let mut load = vec![0.0; g.num_edges()];
    // Cache shortest-path trees per source on demand.
    let mut trees: Vec<Option<ShortestPaths>> = (0..n).map(|_| None).collect();
    let add_path = |trees: &mut Vec<Option<ShortestPaths>>,
                    load: &mut Vec<f64>,
                    from: NodeId,
                    to: NodeId,
                    amount: f64| {
        if from == to || amount == 0.0 {
            return;
        }
        let sp = trees[from].get_or_insert_with(|| shortest_paths(g, from));
        // Walk parents from `to` back to `from`, attributing load.
        let mut v = to;
        while let Some(p) = sp.parent[v] {
            let arc = g
                .neighbors(v)
                .iter()
                .filter(|a| a.to == p)
                .min_by(|a, b| a.w.partial_cmp(&b.w).expect("no NaN"))
                .expect("parent edge exists");
            load[arc.edge] += amount;
            v = p;
            if v == from {
                break;
            }
        }
    };

    for (x, w) in instance.objects.iter().enumerate() {
        let copies = placement.copies(x);
        // Reads and write-serve legs to the nearest copy.
        for v in 0..n {
            let mass = w.reads[v] + w.writes[v];
            if mass > 0.0 {
                let (c, _) = metric.nearest_in(v, copies).expect("non-empty");
                add_path(&mut trees, &mut load, v, c, mass);
            }
        }
        // Multicast: W units along each metric-MST edge, expanded to paths.
        let w_total = w.total_writes();
        if w_total > 0.0 && copies.len() > 1 {
            for (a, b) in metric_mst(metric, copies) {
                add_path(&mut trees, &mut load, a, b, w_total);
            }
        }
    }
    EdgeLoads { load }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{evaluate, UpdatePolicy};
    use crate::instance::ObjectWorkload;
    use dmn_graph::generators;

    fn path_instance() -> Instance {
        let g = generators::path(4, |_| 2.0);
        let mut inst = Instance::builder(g).uniform_storage_cost(1.0).build();
        let mut w = ObjectWorkload::new(4);
        w.reads[3] = 5.0; // 5 reads from the far end
        w.writes[0] = 1.0; // 1 write at the copy end
        inst.push_object(w);
        inst
    }

    #[test]
    fn loads_on_a_path_by_hand() {
        let inst = path_instance();
        let p = Placement::from_copy_sets(vec![vec![0]]);
        let loads = edge_loads(&inst, &p);
        // Reads: 5 units across all three edges; write at the copy: none.
        assert_eq!(loads.load, vec![5.0, 5.0, 5.0]);
        assert_eq!(loads.weighted_total(&inst.graph), 30.0);
        assert_eq!(loads.congestion(&inst.graph), 10.0);
    }

    #[test]
    fn multicast_load_counts_tree_edges() {
        let inst = path_instance();
        let p = Placement::from_copy_sets(vec![vec![0, 3]]);
        let loads = edge_loads(&inst, &p);
        // Reads at 3 are local; the write at 0 is local for the serve leg
        // but multicasts 1 unit across the whole path (MST of {0,3}).
        assert_eq!(loads.load, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn weighted_total_matches_evaluator_traffic() {
        // Independent accountings must agree: sum(load * ct) ==
        // read + update of the evaluator (MST policy).
        use dmn_graph::generators::TransitStubParams;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        for graph in [
            generators::grid(3, 4, |u, v| ((u + v) % 3 + 1) as f64),
            generators::transit_stub(TransitStubParams::default(), &mut rng),
        ] {
            let n = graph.num_nodes();
            let mut inst = Instance::builder(graph).uniform_storage_cost(2.0).build();
            let mut w = ObjectWorkload::new(n);
            for v in 0..n {
                w.reads[v] = ((v * 3) % 4) as f64;
                if v % 5 == 0 {
                    w.writes[v] = 2.0;
                }
            }
            inst.push_object(w);
            let copies: Vec<usize> = (0..n).step_by(7).collect();
            let p = Placement::from_copy_sets(vec![copies]);
            let c = evaluate(&inst, &p, UpdatePolicy::MstMulticast);
            let loads = edge_loads(&inst, &p);
            let traffic = c.read + c.update();
            let weighted = loads.weighted_total(&inst.graph);
            assert!(
                (weighted - traffic).abs() < 1e-6 * (1.0 + traffic),
                "load accounting {weighted} vs evaluator {traffic}"
            );
        }
    }

    #[test]
    fn hottest_edge_identified() {
        let inst = path_instance();
        let p = Placement::from_copy_sets(vec![vec![0]]);
        let loads = edge_loads(&inst, &p);
        let (e, v) = loads.hottest_edge(&inst.graph).unwrap();
        assert!(e < 3);
        assert_eq!(v, 10.0);
    }

    #[test]
    fn replication_reduces_congestion_for_reads() {
        let inst = path_instance();
        let single = Placement::from_copy_sets(vec![vec![0]]);
        let repl = Placement::from_copy_sets(vec![vec![0, 3]]);
        let c1 = edge_loads(&inst, &single).congestion(&inst.graph);
        let c2 = edge_loads(&inst, &repl).congestion(&inst.graph);
        assert!(
            c2 < c1,
            "replication should relieve the hot path: {c2} vs {c1}"
        );
    }
}
