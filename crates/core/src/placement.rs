//! Placements: one non-empty copy set per object.

use dmn_graph::NodeId;
use dmn_json::Json;

/// A placement of object copies onto nodes.
///
/// Copy sets are kept sorted and deduplicated; every object must have at
/// least one copy for the placement to be *servable* (reads need somewhere
/// to go).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    copies: Vec<Vec<NodeId>>,
}

impl Placement {
    /// A placement with empty copy sets for `num_objects` objects
    /// (not servable until every object receives a copy).
    pub fn new(num_objects: usize) -> Self {
        Placement {
            copies: vec![Vec::new(); num_objects],
        }
    }

    /// Builds a placement from per-object copy lists (sorted + deduped).
    pub fn from_copy_sets(sets: Vec<Vec<NodeId>>) -> Self {
        let mut p = Placement::new(sets.len());
        for (x, set) in sets.into_iter().enumerate() {
            p.set_copies(x, set);
        }
        p
    }

    /// Number of objects covered.
    pub fn num_objects(&self) -> usize {
        self.copies.len()
    }

    /// The sorted copy set of object `x`.
    #[inline]
    pub fn copies(&self, x: usize) -> &[NodeId] {
        &self.copies[x]
    }

    /// Replaces the copy set of object `x` (input is sorted and deduped).
    pub fn set_copies(&mut self, x: usize, mut set: Vec<NodeId>) {
        set.sort_unstable();
        set.dedup();
        self.copies[x] = set;
    }

    /// Adds one copy of object `x` on node `v` (no-op when present).
    pub fn add_copy(&mut self, x: usize, v: NodeId) {
        match self.copies[x].binary_search(&v) {
            Ok(_) => {}
            Err(i) => self.copies[x].insert(i, v),
        }
    }

    /// Removes the copy of object `x` on `v`; returns whether it existed.
    pub fn remove_copy(&mut self, x: usize, v: NodeId) -> bool {
        match self.copies[x].binary_search(&v) {
            Ok(i) => {
                self.copies[x].remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// True when object `x` has a copy on `v`.
    pub fn has_copy(&self, x: usize, v: NodeId) -> bool {
        self.copies[x].binary_search(&v).is_ok()
    }

    /// Total number of copies across all objects.
    pub fn total_copies(&self) -> usize {
        self.copies.iter().map(Vec::len).sum()
    }

    /// Encodes the placement as a JSON document
    /// (`{"copies": [[...], ...]}`).
    pub fn to_json(&self) -> Json {
        Json::obj([(
            "copies",
            Json::arr(
                self.copies
                    .iter()
                    .map(|set| Json::arr(set.iter().map(|&v| Json::Num(v as f64)))),
            ),
        )])
    }

    /// Decodes a placement from [`Placement::to_json`] output.
    ///
    /// # Errors
    /// Returns a message when the document does not have the expected shape.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        let sets = json
            .get("copies")
            .and_then(Json::as_arr)
            .ok_or("placement JSON needs a \"copies\" array")?;
        let mut copies = Vec::with_capacity(sets.len());
        for (x, set) in sets.iter().enumerate() {
            let nodes = set
                .as_arr()
                .ok_or_else(|| format!("object {x}: not an array"))?;
            let mut parsed = Vec::with_capacity(nodes.len());
            for v in nodes {
                parsed.push(
                    v.as_usize()
                        .ok_or_else(|| format!("object {x}: bad node id"))?,
                );
            }
            copies.push(parsed);
        }
        Ok(Placement::from_copy_sets(copies))
    }

    /// Checks that every object has at least one copy and every node id is
    /// within `0..n`.
    pub fn validate(&self, n: usize) -> Result<(), String> {
        for (x, set) in self.copies.iter().enumerate() {
            if set.is_empty() {
                return Err(format!("object {x} has no copies"));
            }
            if let Some(&v) = set.iter().find(|&&v| v >= n) {
                return Err(format!("object {x} has a copy on invalid node {v}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_sorts_and_dedups() {
        let mut p = Placement::new(1);
        p.set_copies(0, vec![3, 1, 3, 2]);
        assert_eq!(p.copies(0), &[1, 2, 3]);
        assert_eq!(p.total_copies(), 3);
    }

    #[test]
    fn add_remove_has() {
        let mut p = Placement::new(2);
        p.add_copy(0, 5);
        p.add_copy(0, 2);
        p.add_copy(0, 5);
        assert_eq!(p.copies(0), &[2, 5]);
        assert!(p.has_copy(0, 5));
        assert!(!p.has_copy(1, 5));
        assert!(p.remove_copy(0, 5));
        assert!(!p.remove_copy(0, 5));
        assert_eq!(p.copies(0), &[2]);
    }

    #[test]
    fn validation() {
        let mut p = Placement::new(2);
        p.add_copy(0, 1);
        assert!(p.validate(3).is_err(), "object 1 empty");
        p.add_copy(1, 2);
        assert!(p.validate(3).is_ok());
        p.add_copy(1, 9);
        assert!(p.validate(3).is_err(), "node out of range");
    }

    #[test]
    fn from_copy_sets_roundtrip() {
        let p = Placement::from_copy_sets(vec![vec![2, 0], vec![1]]);
        assert_eq!(p.copies(0), &[0, 2]);
        assert_eq!(p.copies(1), &[1]);
    }

    #[test]
    fn json_roundtrip() {
        let p = Placement::from_copy_sets(vec![vec![2, 0], vec![1], vec![5, 7, 9]]);
        let text = p.to_json().to_string_compact();
        let back = Placement::from_json(&dmn_json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, p);
        assert!(Placement::from_json(&dmn_json::parse("{}").unwrap()).is_err());
    }
}
