//! The cost-based data management model of Krick, Räcke & Westermann
//! (SPAA 2001).
//!
//! A computer system is an undirected graph whose nodes carry a storage
//! cost `cs(v)` (fee per stored object) and whose edges carry a
//! transmission cost `ct(e)` (fee per transmitted object); the shortest-path
//! closure of `ct` is a metric. For every shared object we are given read
//! and write frequencies per node. A *placement* selects a non-empty copy
//! set per object; the total cost decomposes into
//!
//! * **storage cost** — `cs(v)` per copy,
//! * **read cost** — every read pays the distance to the nearest copy, and
//! * **update cost** — every write pays a message to the nearest copy plus
//!   an update of all copies along a multicast tree.
//!
//! This crate provides the model types ([`instance`], [`placement`]), the
//! cost evaluator with the paper's and baseline update policies ([`cost`]),
//! the write/storage radii at the heart of the approximation algorithm
//! ([`radii`]), and the constructive Lemma-1 transformation into
//! *restricted* placements ([`restricted`]).

pub mod cost;
pub mod faults;
pub mod instance;
pub mod load;
pub mod parallel;
pub mod placement;
pub mod radii;
pub mod restricted;
pub mod shapes;
pub mod telemetry;

pub use cost::{
    evaluate, evaluate_object, evaluate_object_on_graph, evaluate_sparse, CostBreakdown,
    UpdatePolicy,
};
pub use faults::{FaultAction, FaultGuard, FaultPlan, FaultSpec, Injected};
pub use instance::{Instance, InstanceBuilder, ObjectWorkload, ValidationError};
pub use placement::Placement;
pub use radii::RadiusTable;
pub use shapes::{evaluate_object_shaped, ObjectShape};
pub use telemetry::{Counter, Gauge, Histogram, HistogramSnapshot, Span, SpanRecord};
