//! Restricted placements and the constructive Lemma-1 transformation.
//!
//! A placement is **restricted** when (1) all writes share one multicast
//! tree `T_x` over the copy set and (2) every copy serves at least `W`
//! requests, `W` being the object's total write frequency. Lemma 1 proves
//! `C^OPT_W <= 4 C^OPT` by transforming any placement: replace every update
//! set by "path to nearest copy + MST over copies" (Claim 2: at most a
//! factor 2), then repeatedly delete the under-loaded copy farthest from
//! the MST root, reassigning its requests to their nearest survivors
//! (another factor at most 2 in total).
//!
//! [`restrict_placement`] implements exactly that deletion process; the
//! experiment suite (E1) uses it to confirm the factor-4 bound
//! constructively, instance by instance.

use dmn_graph::mst::metric_mst;
use dmn_graph::{Metric, NodeId};

use crate::instance::ObjectWorkload;

/// Outcome of the Lemma-1 transformation.
#[derive(Debug, Clone)]
pub struct Restricted {
    /// Surviving copy set (sorted). Serves at least `W` requests each under
    /// nearest-copy assignment.
    pub copies: Vec<NodeId>,
    /// Copies deleted by the transformation, in deletion order.
    pub deleted: Vec<NodeId>,
}

/// Applies the copy-deletion process of Lemma 1 to `copies`.
///
/// Copies are connected by a minimum spanning tree in the metric, rooted at
/// the first copy; while some copy serves (by nearest-copy assignment of
/// the combined read+write request mass) less than `W` requests, the
/// under-loaded copy with the largest tree distance from the root is
/// deleted. The surviving set is restricted.
///
/// # Panics
/// Panics when `copies` is empty.
pub fn restrict_placement(
    metric: &Metric,
    workload: &ObjectWorkload,
    copies: &[NodeId],
) -> Restricted {
    assert!(!copies.is_empty(), "cannot restrict an empty placement");
    let w_total = workload.total_writes();
    let masses = workload.request_masses();
    let mut alive: Vec<NodeId> = {
        let mut c = copies.to_vec();
        c.sort_unstable();
        c.dedup();
        c
    };
    if w_total == 0.0 || alive.len() == 1 {
        return Restricted {
            copies: alive,
            deleted: Vec::new(),
        };
    }

    // Tree distance from the root along the *original* MST (fixed for the
    // whole process, as in the paper's proof).
    let tree_dist = mst_tree_distances(metric, &alive);
    let original = alive.clone();

    let mut deleted = Vec::new();
    loop {
        // Served mass per alive copy under nearest-copy assignment.
        let mut served = vec![0.0; alive.len()];
        for (v, &m) in masses.iter().enumerate() {
            if m > 0.0 {
                let (c, _) = metric.nearest_in(v, &alive).expect("alive is non-empty");
                let idx = alive.iter().position(|&a| a == c).expect("copy exists");
                served[idx] += m;
            }
        }
        // Under-loaded copy farthest from the MST root.
        let candidate = alive
            .iter()
            .enumerate()
            .filter(|&(i, _)| served[i] + 1e-9 < w_total)
            .max_by(|a, b| {
                let da = original
                    .binary_search(a.1)
                    .map(|i| tree_dist[i])
                    .unwrap_or(0.0);
                let db = original
                    .binary_search(b.1)
                    .map(|i| tree_dist[i])
                    .unwrap_or(0.0);
                da.partial_cmp(&db).expect("distances are not NaN")
            })
            .map(|(i, _)| i);
        match candidate {
            None => break,
            Some(i) => {
                assert!(
                    alive.len() > 1,
                    "the last copy serves all requests >= W; Lemma 1 termination"
                );
                deleted.push(alive.remove(i));
            }
        }
    }
    Restricted {
        copies: alive,
        deleted,
    }
}

/// Distances from the root (first node) to every node along the metric MST
/// over `nodes` (which must be sorted). Index-aligned with `nodes`.
fn mst_tree_distances(metric: &Metric, nodes: &[NodeId]) -> Vec<f64> {
    let k = nodes.len();
    let edges = metric_mst(metric, nodes);
    let mut adj = vec![Vec::new(); k];
    let index_of = |v: NodeId| nodes.binary_search(&v).expect("node in set");
    for &(u, v) in &edges {
        let (iu, iv) = (index_of(u), index_of(v));
        let w = metric.dist(u, v);
        adj[iu].push((iv, w));
        adj[iv].push((iu, w));
    }
    let mut dist = vec![f64::INFINITY; k];
    let mut stack = vec![0usize];
    dist[0] = 0.0;
    while let Some(i) = stack.pop() {
        for &(j, w) in &adj[i] {
            if dist[j].is_infinite() {
                dist[j] = dist[i] + w;
                stack.push(j);
            }
        }
    }
    dist
}

/// Verifies the two restricted-placement constraints for a copy set:
/// every copy serves at least `W` request mass under nearest-copy
/// assignment. (The shared multicast tree is a property of the policy, not
/// the copy set, so only the service constraint is checked.)
pub fn is_restricted(metric: &Metric, workload: &ObjectWorkload, copies: &[NodeId]) -> bool {
    if copies.is_empty() {
        return false;
    }
    let w_total = workload.total_writes();
    if w_total == 0.0 {
        return true;
    }
    let mut served = vec![0.0; copies.len()];
    for v in 0..workload.num_nodes() {
        let m = workload.request_mass(v);
        if m > 0.0 {
            let (c, _) = metric.nearest_in(v, copies).expect("non-empty");
            let idx = copies.iter().position(|&a| a == c).expect("copy exists");
            served[idx] += m;
        }
    }
    served.iter().all(|&s| s + 1e-9 >= w_total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{evaluate_object, UpdatePolicy};

    /// Line: two request hubs far apart, one lonely copy in between.
    #[test]
    fn underloaded_far_copy_is_deleted() {
        let metric = Metric::from_line(&[0.0, 1.0, 2.0, 50.0]);
        let mut w = ObjectWorkload::new(4);
        w.reads[0] = 5.0;
        w.writes[1] = 3.0; // W = 3
                           // Copy on 3 can only attract... nothing (all requests closer to 0).
        let r = restrict_placement(&metric, &w, &[0, 3]);
        assert_eq!(r.copies, vec![0]);
        assert_eq!(r.deleted, vec![3]);
        assert!(is_restricted(&metric, &w, &r.copies));
    }

    #[test]
    fn well_loaded_copies_survive() {
        let metric = Metric::from_line(&[0.0, 10.0]);
        let mut w = ObjectWorkload::new(2);
        w.reads[0] = 5.0;
        w.reads[1] = 5.0;
        w.writes[0] = 1.0; // W = 1; each copy serves 5 or 6 >= 1
        let r = restrict_placement(&metric, &w, &[0, 1]);
        assert_eq!(r.copies, vec![0, 1]);
        assert!(r.deleted.is_empty());
        assert!(is_restricted(&metric, &w, &r.copies));
    }

    #[test]
    fn read_only_objects_are_trivially_restricted() {
        let metric = Metric::from_line(&[0.0, 1.0, 2.0]);
        let w = ObjectWorkload::from_sparse(3, [(0, 1.0)], []);
        let r = restrict_placement(&metric, &w, &[0, 1, 2]);
        assert_eq!(r.copies, vec![0, 1, 2]);
        assert!(is_restricted(&metric, &w, &r.copies));
    }

    #[test]
    fn result_is_always_restricted_and_cheaper_than_four_times_input() {
        // The Lemma-1 chain bounds the restricted cost by 4x the original
        // *optimal* cost; for an arbitrary input placement the deletion
        // process must still terminate in a restricted set whose cost under
        // the MST policy stays within the Lemma-1 envelope of the input's
        // MST-policy cost (deletions add at most the update cost once).
        let metric = Metric::from_line(&[0.0, 2.0, 3.0, 7.0, 20.0]);
        let mut w = ObjectWorkload::new(5);
        w.reads[0] = 2.0;
        w.reads[4] = 2.0;
        w.writes[2] = 4.0; // W = 4
        let cs = vec![1.0; 5];
        let input = vec![0, 1, 3, 4];
        let before = evaluate_object(&metric, &cs, &w, &input, UpdatePolicy::MstMulticast);
        let r = restrict_placement(&metric, &w, &input);
        assert!(
            is_restricted(&metric, &w, &r.copies),
            "copies: {:?}",
            r.copies
        );
        let after = evaluate_object(&metric, &cs, &w, &r.copies, UpdatePolicy::MstMulticast);
        // Deleting copies never increases storage; reassignments are paid
        // for by at most the input's update cost (proof of Lemma 1).
        assert!(after.storage <= before.storage + 1e-9);
        assert!(
            after.total() <= 2.0 * before.total() + 1e-9,
            "after {} vs before {}",
            after.total(),
            before.total()
        );
    }

    #[test]
    fn single_copy_never_deleted() {
        let metric = Metric::from_line(&[0.0, 1.0]);
        let mut w = ObjectWorkload::new(2);
        w.writes[0] = 2.0;
        let r = restrict_placement(&metric, &w, &[1]);
        assert_eq!(r.copies, vec![1]);
        assert!(is_restricted(&metric, &w, &r.copies));
    }
}
