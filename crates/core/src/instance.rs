//! Problem instances: a network plus per-object read/write frequencies.

use std::sync::{Arc, OnceLock};

use dmn_graph::dijkstra::apsp;
use dmn_graph::{Graph, Metric, NodeId};

/// Read and write request frequencies of one shared data object.
///
/// Frequencies are non-negative real weights; the paper's natural-number
/// frequencies are the integral special case. `reads[v]` is `fr(v, x)` and
/// `writes[v]` is `fw(v, x)`.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectWorkload {
    /// Read frequency per node (`fr`).
    pub reads: Vec<f64>,
    /// Write frequency per node (`fw`).
    pub writes: Vec<f64>,
}

impl ObjectWorkload {
    /// An object with zero frequencies everywhere on an `n`-node network.
    pub fn new(n: usize) -> Self {
        ObjectWorkload {
            reads: vec![0.0; n],
            writes: vec![0.0; n],
        }
    }

    /// Builds a workload from explicit `(node, frequency)` lists.
    pub fn from_sparse(
        n: usize,
        reads: impl IntoIterator<Item = (NodeId, f64)>,
        writes: impl IntoIterator<Item = (NodeId, f64)>,
    ) -> Self {
        let mut w = ObjectWorkload::new(n);
        for (v, f) in reads {
            w.reads[v] += f;
        }
        for (v, f) in writes {
            w.writes[v] += f;
        }
        w
    }

    /// Number of nodes the workload is defined over.
    pub fn num_nodes(&self) -> usize {
        self.reads.len()
    }

    /// Total read frequency.
    pub fn total_reads(&self) -> f64 {
        self.reads.iter().sum()
    }

    /// Total write frequency — the paper's `W`.
    pub fn total_writes(&self) -> f64 {
        self.writes.iter().sum()
    }

    /// Total request mass (reads + writes). After the restricted-cost
    /// split, reads and the write→nearest-copy legs are accounted
    /// identically, so most of the machinery only needs this combined mass.
    pub fn total_requests(&self) -> f64 {
        self.total_reads() + self.total_writes()
    }

    /// Combined request mass at `v` (`fr(v) + fw(v)`).
    #[inline]
    pub fn request_mass(&self, v: NodeId) -> f64 {
        self.reads[v] + self.writes[v]
    }

    /// Per-node combined request masses.
    pub fn request_masses(&self) -> Vec<f64> {
        (0..self.num_nodes())
            .map(|v| self.request_mass(v))
            .collect()
    }

    /// True when the object is never written.
    pub fn is_read_only(&self) -> bool {
        self.writes.iter().all(|&w| w == 0.0)
    }

    /// Checks frequencies are finite and non-negative.
    pub fn validate(&self) -> Result<(), String> {
        assert_eq!(self.reads.len(), self.writes.len());
        for (v, (&r, &w)) in self.reads.iter().zip(&self.writes).enumerate() {
            if !(r.is_finite() && r >= 0.0) {
                return Err(format!("read frequency at node {v} is invalid: {r}"));
            }
            if !(w.is_finite() && w >= 0.0) {
                return Err(format!("write frequency at node {v} is invalid: {w}"));
            }
        }
        if self.total_requests() == 0.0 {
            return Err("object has no requests at all".into());
        }
        Ok(())
    }
}

/// Why an instance (or a piece of one) failed validation.
///
/// [`InstanceBuilder::try_build`] and [`Instance::try_push_object`]
/// return these where the panicking [`InstanceBuilder::build`] /
/// [`Instance::push_object`] entry points would abort; loaders that
/// handle untrusted input (scenario files, the server's event stream)
/// use the `try_` forms and surface the error in-band.
#[derive(Debug, Clone, PartialEq)]
pub enum ValidationError {
    /// The network has no nodes.
    EmptyNetwork,
    /// The network is not connected, so distances are undefined.
    Disconnected,
    /// The storage-cost vector is sized for a different network.
    StorageCostLength { expected: usize, got: usize },
    /// A storage cost is negative or NaN (`+inf` is allowed: it forbids
    /// copies on the node).
    BadStorageCost { node: usize, value: f64 },
    /// An object workload is sized for a different network.
    WorkloadSize {
        object: usize,
        expected: usize,
        got: usize,
    },
    /// An object workload has a NaN/negative/infinite frequency or no
    /// requests at all.
    BadWorkload { object: usize, reason: String },
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::EmptyNetwork => write!(f, "instance needs at least one node"),
            ValidationError::Disconnected => write!(f, "the network must be connected"),
            ValidationError::StorageCostLength { expected, got } => write!(
                f,
                "storage cost vector length mismatch: {got} costs for {expected} nodes"
            ),
            ValidationError::BadStorageCost { node, value } => {
                write!(f, "storage cost at node {node} invalid: {value}")
            }
            ValidationError::WorkloadSize {
                object,
                expected,
                got,
            } => write!(
                f,
                "object {object} workload sized for {got} nodes on a {expected}-node network"
            ),
            ValidationError::BadWorkload { object, reason } => {
                write!(f, "object {object}: {reason}")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// A static data management instance: network, storage costs, objects.
#[derive(Debug)]
pub struct Instance {
    /// The network; edge weights are the transmission costs `ct`.
    pub graph: Graph,
    /// Storage cost `cs(v)` per node.
    pub storage_cost: Vec<f64>,
    /// The shared objects with their request frequencies.
    pub objects: Vec<ObjectWorkload>,
    metric: OnceLock<Arc<Metric>>,
    /// Wall-clock seconds this instance spent building its dense closure
    /// (0 when the metric was injected, inherited from a parent view, or
    /// never forced).
    metric_seconds: OnceLock<f64>,
}

impl Instance {
    /// Starts building an instance over `graph`.
    pub fn builder(graph: Graph) -> InstanceBuilder {
        InstanceBuilder {
            graph,
            storage_cost: None,
        }
    }

    /// Number of network nodes.
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Number of objects.
    pub fn num_objects(&self) -> usize {
        self.objects.len()
    }

    /// Appends an object workload.
    ///
    /// # Panics
    /// Panics when the workload is sized for a different network or has
    /// invalid frequencies.
    pub fn push_object(&mut self, w: ObjectWorkload) {
        assert_eq!(w.num_nodes(), self.num_nodes(), "workload size mismatch");
        w.validate().expect("invalid workload");
        self.objects.push(w);
    }

    /// Appends an object workload, returning a typed error instead of
    /// panicking when it is sized for a different network or carries
    /// invalid frequencies.
    pub fn try_push_object(&mut self, w: ObjectWorkload) -> Result<(), ValidationError> {
        let object = self.objects.len();
        if w.num_nodes() != self.num_nodes() {
            return Err(ValidationError::WorkloadSize {
                object,
                expected: self.num_nodes(),
                got: w.num_nodes(),
            });
        }
        w.validate()
            .map_err(|reason| ValidationError::BadWorkload { object, reason })?;
        self.objects.push(w);
        Ok(())
    }

    /// The metric closure `ct(u, v)` of the network, computed on first use
    /// and cached (behind an `Arc`, so sub-views share it for free).
    pub fn metric(&self) -> &Metric {
        self.metric
            .get_or_init(|| {
                let clock = std::time::Instant::now();
                let m = Arc::new(apsp(&self.graph));
                let _ = self.metric_seconds.set(clock.elapsed().as_secs_f64());
                m
            })
            .as_ref()
    }

    /// Seconds spent building the dense metric closure of *this* instance
    /// (0.0 when it was never built here — injected, shared, or still
    /// lazy). Reports surface this as the `metric-build` phase.
    pub fn metric_build_seconds(&self) -> f64 {
        self.metric_seconds.get().copied().unwrap_or(0.0)
    }

    /// Overrides the cached metric (used when a cheaper construction is
    /// available, e.g. tree distances, or in tests).
    pub fn with_metric(mut self, metric: Metric) -> Self {
        assert_eq!(metric.len(), self.num_nodes());
        self.metric = OnceLock::from(Arc::new(metric));
        self
    }

    /// A sub-instance over the same network holding only the objects at
    /// `indices` (in the given order). The already-computed metric closure
    /// is shared with the sub-view (an `Arc` clone, no `O(n^2)` copy), so
    /// shard workers never recompute APSP; callers that care should force
    /// it first with [`Instance::metric`].
    ///
    /// # Panics
    /// Panics when an index is out of range.
    pub fn object_subset(&self, indices: &[usize]) -> Instance {
        let objects = indices
            .iter()
            .map(|&x| {
                assert!(x < self.num_objects(), "object index {x} out of range");
                self.objects[x].clone()
            })
            .collect();
        let metric = match self.metric.get() {
            Some(m) => OnceLock::from(Arc::clone(m)),
            None => OnceLock::new(),
        };
        Instance {
            graph: self.graph.clone(),
            storage_cost: self.storage_cost.clone(),
            objects,
            metric,
            metric_seconds: OnceLock::new(),
        }
    }
}

/// Builder for [`Instance`].
pub struct InstanceBuilder {
    graph: Graph,
    storage_cost: Option<Vec<f64>>,
}

impl InstanceBuilder {
    /// Sets an explicit per-node storage cost vector `cs`.
    pub fn storage_costs(mut self, cs: Vec<f64>) -> Self {
        self.storage_cost = Some(cs);
        self
    }

    /// Sets the same storage cost on every node.
    pub fn uniform_storage_cost(mut self, c: f64) -> Self {
        self.storage_cost = Some(vec![c; self.graph.num_nodes()]);
        self
    }

    /// Finishes the instance (no objects yet; add them with
    /// [`Instance::push_object`]).
    ///
    /// # Panics
    /// Panics when the graph is disconnected, the storage-cost vector has
    /// the wrong length, or a storage cost is negative/non-finite.
    /// Storage costs may be `f64::INFINITY` to forbid copies on a node.
    pub fn build(self) -> Instance {
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`InstanceBuilder::build`], but returns a typed
    /// [`ValidationError`] instead of panicking — the entry point for
    /// untrusted input (scenario files, wire protocols).
    pub fn try_build(self) -> Result<Instance, ValidationError> {
        let n = self.graph.num_nodes();
        if n == 0 {
            return Err(ValidationError::EmptyNetwork);
        }
        if !self.graph.is_connected() {
            return Err(ValidationError::Disconnected);
        }
        let cs = self.storage_cost.unwrap_or_else(|| vec![0.0; n]);
        if cs.len() != n {
            return Err(ValidationError::StorageCostLength {
                expected: n,
                got: cs.len(),
            });
        }
        for (v, &c) in cs.iter().enumerate() {
            // +inf is a legal "never store here"; negative and NaN are not.
            if c < 0.0 || c.is_nan() {
                return Err(ValidationError::BadStorageCost { node: v, value: c });
            }
        }
        Ok(Instance {
            graph: self.graph,
            storage_cost: cs,
            objects: Vec::new(),
            metric: OnceLock::new(),
            metric_seconds: OnceLock::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmn_graph::generators;

    #[test]
    fn builder_defaults_and_push() {
        let g = generators::path(4, |_| 1.0);
        let mut inst = Instance::builder(g).uniform_storage_cost(3.0).build();
        assert_eq!(inst.storage_cost, vec![3.0; 4]);
        let mut w = ObjectWorkload::new(4);
        w.reads[0] = 2.0;
        w.writes[3] = 1.0;
        inst.push_object(w);
        assert_eq!(inst.num_objects(), 1);
        assert_eq!(inst.objects[0].total_requests(), 3.0);
        assert_eq!(inst.objects[0].total_writes(), 1.0);
        assert!(!inst.objects[0].is_read_only());
    }

    #[test]
    fn metric_is_cached_shortest_paths() {
        let g = generators::path(3, |i| (i + 1) as f64); // edges 1, 2
        let inst = Instance::builder(g).build();
        assert_eq!(inst.metric().dist(0, 2), 3.0);
        assert_eq!(inst.metric().dist(2, 1), 2.0);
    }

    #[test]
    fn sparse_workload_accumulates() {
        let w = ObjectWorkload::from_sparse(3, [(0, 1.0), (0, 2.0)], [(2, 4.0)]);
        assert_eq!(w.reads[0], 3.0);
        assert_eq!(w.writes[2], 4.0);
        assert_eq!(w.request_mass(0), 3.0);
        assert_eq!(w.total_requests(), 7.0);
    }

    #[test]
    fn workload_validation() {
        let w = ObjectWorkload::new(3);
        assert!(w.validate().is_err(), "empty workload rejected");
        let w = ObjectWorkload::from_sparse(3, [(1, 1.0)], []);
        assert!(w.validate().is_ok());
    }

    #[test]
    fn object_subset_shares_metric_and_reorders() {
        let g = generators::path(3, |_| 1.0);
        let mut inst = Instance::builder(g).uniform_storage_cost(2.0).build();
        for v in 0..3 {
            inst.push_object(ObjectWorkload::from_sparse(3, [(v, 1.0 + v as f64)], []));
        }
        let _ = inst.metric(); // force, so the subset shares the closure
        let sub = inst.object_subset(&[2, 0]);
        assert_eq!(sub.num_objects(), 2);
        assert_eq!(sub.objects[0], inst.objects[2]);
        assert_eq!(sub.objects[1], inst.objects[0]);
        assert_eq!(sub.storage_cost, inst.storage_cost);
        // The cached closure is *shared*, not copied: same allocation.
        assert!(std::ptr::eq(inst.metric(), sub.metric()));
        assert_eq!(sub.metric().dist(0, 2), 2.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn object_subset_rejects_bad_index() {
        let g = generators::path(2, |_| 1.0);
        let mut inst = Instance::builder(g).build();
        inst.push_object(ObjectWorkload::from_sparse(2, [(0, 1.0)], []));
        let _ = inst.object_subset(&[1]);
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn disconnected_graph_rejected() {
        let g = Graph::new(2);
        Instance::builder(g).build();
    }

    #[test]
    fn try_build_returns_typed_errors() {
        let err = Instance::builder(Graph::new(0)).try_build().unwrap_err();
        assert_eq!(err, ValidationError::EmptyNetwork);

        let err = Instance::builder(Graph::new(2)).try_build().unwrap_err();
        assert_eq!(err, ValidationError::Disconnected);

        let g = generators::path(3, |_| 1.0);
        let err = Instance::builder(g)
            .storage_costs(vec![1.0])
            .try_build()
            .unwrap_err();
        assert_eq!(
            err,
            ValidationError::StorageCostLength {
                expected: 3,
                got: 1
            }
        );

        let g = generators::path(2, |_| 1.0);
        let err = Instance::builder(g)
            .storage_costs(vec![0.0, -2.0])
            .try_build()
            .unwrap_err();
        assert!(matches!(
            err,
            ValidationError::BadStorageCost { node: 1, .. }
        ));
        assert!(err.to_string().contains("node 1"), "{err}");
    }

    #[test]
    fn try_push_object_returns_typed_errors() {
        let g = generators::path(2, |_| 1.0);
        let mut inst = Instance::builder(g).build();
        let err = inst.try_push_object(ObjectWorkload::new(3)).unwrap_err();
        assert_eq!(
            err,
            ValidationError::WorkloadSize {
                object: 0,
                expected: 2,
                got: 3
            }
        );
        let mut bad = ObjectWorkload::new(2);
        bad.reads[0] = f64::NAN;
        assert!(matches!(
            inst.try_push_object(bad),
            Err(ValidationError::BadWorkload { object: 0, .. })
        ));
        assert!(inst
            .try_push_object(ObjectWorkload::from_sparse(2, [(0, 1.0)], []))
            .is_ok());
        assert_eq!(inst.num_objects(), 1);
    }

    #[test]
    fn infinite_storage_cost_allowed() {
        let g = generators::path(2, |_| 1.0);
        let inst = Instance::builder(g)
            .storage_costs(vec![0.0, f64::INFINITY])
            .build();
        assert!(inst.storage_cost[1].is_infinite());
    }
}
