//! Deterministic, seeded fault injection for chaos testing.
//!
//! Production code declares *named injection points* by calling
//! [`hit`] at the places where the chaos harness wants to misbehave:
//! the solver's phase-1 loop ([`points::SOLVE_PHASE1`]), the server's
//! background re-solve ([`points::SERVER_RESOLVE`]), the TCP read loop
//! ([`points::TCP_READ`]) and the event-apply path
//! ([`points::EVENT_APPLY`]). When no [`FaultPlan`] is armed — the
//! normal case — a hit is a single relaxed atomic load and nothing
//! else, so the points are free in production.
//!
//! A [`FaultPlan`] arms a set of [`FaultSpec`]s, each binding a point
//! to a [`FaultAction`] (panic, artificial latency, a transient error,
//! or an event-flood burst) with deterministic hit-counter triggering:
//! the fault skips the first `after` hits and then fires `times` times.
//! Nothing here consults the clock or a random source at decision
//! time, so a replay under the same plan fires the same faults at the
//! same operations every run.
//!
//! The plan is process-global (one server under test per process);
//! tests that arm faults must serialize through [`exclusive`] because
//! `cargo test` runs tests on concurrent threads.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use dmn_json::Json;

/// Canonical injection-point names. Production code should reference
/// these constants rather than inline strings so plans and code can't
/// drift apart.
pub mod points {
    /// Inside the solver's phase-1 per-object loop (`dmn-solve` engines).
    pub const SOLVE_PHASE1: &str = "solve.phase1";
    /// At the start of a background/foreground re-solve attempt in
    /// `dmn-server`.
    pub const SERVER_RESOLVE: &str = "server.resolve";
    /// Per request line in the TCP connection handler.
    pub const TCP_READ: &str = "tcp.read";
    /// Per event in `ServerHandle::apply`.
    pub const EVENT_APPLY: &str = "event.apply";
}

/// What an armed fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// Panic with a recognizable message (`injected fault at <point>`).
    Panic,
    /// Sleep for the given number of milliseconds, then continue.
    DelayMillis(u64),
    /// Report a transient, retryable error to the caller.
    TransientError,
    /// Ask the caller to synthesize a burst of this many extra events.
    FloodEvents(usize),
}

impl FaultAction {
    /// Stable wire name used in scenario JSON.
    pub fn name(&self) -> &'static str {
        match self {
            FaultAction::Panic => "panic",
            FaultAction::DelayMillis(_) => "delay",
            FaultAction::TransientError => "transient-error",
            FaultAction::FloodEvents(_) => "flood",
        }
    }
}

/// One armed fault: a point, an action, and deterministic triggering.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Injection-point name (see [`points`]).
    pub point: String,
    pub action: FaultAction,
    /// Skip this many hits at the point before firing.
    pub after: u64,
    /// Fire at most this many times; `0` means unlimited.
    pub times: u64,
}

impl FaultSpec {
    /// A fault that fires on the very first hit, once.
    pub fn once(point: &str, action: FaultAction) -> FaultSpec {
        FaultSpec {
            point: point.to_string(),
            action,
            after: 0,
            times: 1,
        }
    }

    /// Same, but skipping the first `after` hits.
    pub fn after(point: &str, action: FaultAction, after: u64) -> FaultSpec {
        FaultSpec {
            after,
            ..FaultSpec::once(point, action)
        }
    }

    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("point", Json::Str(self.point.clone())),
            ("action", Json::Str(self.action.name().to_string())),
            ("after", Json::Num(self.after as f64)),
            ("times", Json::Num(self.times as f64)),
        ];
        match self.action {
            FaultAction::DelayMillis(ms) => fields.push(("millis", Json::Num(ms as f64))),
            FaultAction::FloodEvents(n) => fields.push(("events", Json::Num(n as f64))),
            FaultAction::Panic | FaultAction::TransientError => {}
        }
        Json::obj(fields)
    }

    pub fn from_json(doc: &Json) -> Result<FaultSpec, String> {
        let point = doc
            .get("point")
            .and_then(Json::as_str)
            .ok_or("fault needs a string 'point'")?
            .to_string();
        let action_name = doc
            .get("action")
            .and_then(Json::as_str)
            .ok_or("fault needs a string 'action'")?;
        let action = match action_name {
            "panic" => FaultAction::Panic,
            "delay" => FaultAction::DelayMillis(
                doc.get("millis")
                    .and_then(Json::as_f64)
                    .ok_or("delay fault needs numeric 'millis'")? as u64,
            ),
            "transient-error" => FaultAction::TransientError,
            "flood" => FaultAction::FloodEvents(
                doc.get("events")
                    .and_then(Json::as_usize)
                    .ok_or("flood fault needs numeric 'events'")?,
            ),
            other => return Err(format!("unknown fault action '{other}'")),
        };
        let counter = |key: &str, default: u64| -> Result<u64, String> {
            match doc.get(key) {
                None | Some(Json::Null) => Ok(default),
                Some(v) => {
                    let n = v
                        .as_f64()
                        .filter(|n| n.is_finite() && *n >= 0.0)
                        .ok_or_else(|| format!("fault '{key}' must be a non-negative number"))?;
                    Ok(n as u64)
                }
            }
        };
        Ok(FaultSpec {
            point,
            action,
            after: counter("after", 0)?,
            times: counter("times", 1)?,
        })
    }
}

/// A seeded schedule of faults, round-trippable through the scenario
/// JSON `"faults"` block.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed for any randomized payloads the harness derives from the
    /// plan (e.g. flood-event contents). Triggering itself is
    /// hit-counter based and never consults this.
    pub seed: u64,
    pub inject: Vec<FaultSpec>,
}

impl FaultPlan {
    pub fn new(seed: u64, inject: Vec<FaultSpec>) -> FaultPlan {
        FaultPlan { seed, inject }
    }

    pub fn to_json(&self) -> Json {
        Json::obj([
            ("seed", Json::Num(self.seed as f64)),
            (
                "inject",
                Json::Arr(self.inject.iter().map(FaultSpec::to_json).collect()),
            ),
        ])
    }

    pub fn from_json(doc: &Json) -> Result<FaultPlan, String> {
        let seed = match doc.get("seed") {
            None | Some(Json::Null) => 0,
            Some(v) => v
                .as_f64()
                .filter(|n| n.is_finite() && *n >= 0.0)
                .ok_or("fault plan 'seed' must be a non-negative number")?
                as u64,
        };
        let inject = match doc.get("inject") {
            None | Some(Json::Null) => Vec::new(),
            Some(v) => v
                .as_arr()
                .ok_or("fault plan 'inject' must be an array")?
                .iter()
                .map(FaultSpec::from_json)
                .collect::<Result<Vec<_>, _>>()?,
        };
        Ok(FaultPlan { seed, inject })
    }
}

/// A fired fault the caller must act on. `Panic` and `DelayMillis`
/// never reach the caller: [`hit`] panics or sleeps inline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Injected {
    /// Treat the current operation as having failed transiently.
    TransientError,
    /// Synthesize a burst of this many extra events.
    FloodEvents(usize),
}

struct ActiveFault {
    spec: FaultSpec,
    seen: u64,
    fired: u64,
}

struct Armory {
    armed: AtomicBool,
    plan: Mutex<Vec<ActiveFault>>,
    test_gate: Mutex<()>,
}

fn armory() -> &'static Armory {
    static ARMORY: OnceLock<Armory> = OnceLock::new();
    ARMORY.get_or_init(|| Armory {
        armed: AtomicBool::new(false),
        plan: Mutex::new(Vec::new()),
        test_gate: Mutex::new(()),
    })
}

fn heal<'a, T>(
    r: Result<MutexGuard<'a, T>, std::sync::PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    // An injected panic while a guard is live poisons the mutex by
    // design; the protected state is still consistent (counters only).
    r.unwrap_or_else(|e| e.into_inner())
}

/// Serialize tests (and benches) that arm the process-global plan.
pub fn exclusive() -> MutexGuard<'static, ()> {
    heal(armory().test_gate.lock())
}

/// Disarms the plan (and resets all counters) when dropped.
pub struct FaultGuard {
    _private: (),
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        disarm();
    }
}

/// Arm a plan process-wide. The previous plan, if any, is replaced.
pub fn arm(plan: &FaultPlan) -> FaultGuard {
    let a = armory();
    *heal(a.plan.lock()) = plan
        .inject
        .iter()
        .map(|spec| ActiveFault {
            spec: spec.clone(),
            seen: 0,
            fired: 0,
        })
        .collect();
    a.armed.store(!plan.inject.is_empty(), Ordering::SeqCst);
    FaultGuard { _private: () }
}

/// Disarm and clear the active plan.
pub fn disarm() {
    let a = armory();
    a.armed.store(false, Ordering::SeqCst);
    heal(a.plan.lock()).clear();
}

/// True when a non-empty plan is armed.
pub fn is_armed() -> bool {
    armory().armed.load(Ordering::Relaxed)
}

/// How many times faults at `point` have fired under the current plan.
pub fn fired(point: &str) -> u64 {
    if !is_armed() {
        return 0;
    }
    heal(armory().plan.lock())
        .iter()
        .filter(|f| f.spec.point == point)
        .map(|f| f.fired)
        .sum()
}

/// Declare an injection point. Disarmed: one relaxed atomic load.
/// Armed: matching faults advance their hit counters; a due `Panic`
/// panics here, a due delay sleeps here, and transient errors or
/// flood requests are returned for the caller to act on.
#[inline]
pub fn hit(point: &str) -> Option<Injected> {
    if !armory().armed.load(Ordering::Relaxed) {
        return None;
    }
    hit_slow(point)
}

#[cold]
fn hit_slow(point: &str) -> Option<Injected> {
    let mut delay = 0u64;
    let mut do_panic = false;
    let mut injected = None;
    let mut fired_now = 0u64;
    {
        let mut plan = heal(armory().plan.lock());
        for fault in plan.iter_mut().filter(|f| f.spec.point == point) {
            fault.seen += 1;
            if fault.seen <= fault.spec.after {
                continue;
            }
            if fault.spec.times != 0 && fault.fired >= fault.spec.times {
                continue;
            }
            fault.fired += 1;
            fired_now += 1;
            match fault.spec.action {
                FaultAction::Panic => do_panic = true,
                FaultAction::DelayMillis(ms) => delay = delay.max(ms),
                FaultAction::TransientError => injected = Some(Injected::TransientError),
                FaultAction::FloodEvents(n) => injected = Some(Injected::FloodEvents(n)),
            }
        }
    }
    // Mirror every fire into the telemetry registry (before the panic or
    // sleep takes effect) so chaos assertions and the metrics endpoint
    // share one counting path with the plan's own `fired` counters.
    if fired_now > 0 {
        crate::telemetry::fault_fired_total(point).add(fired_now);
    }
    if delay > 0 {
        std::thread::sleep(Duration::from_millis(delay));
    }
    if do_panic {
        panic!("injected fault at {point}");
    }
    injected
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_hit_is_a_noop() {
        let _gate = exclusive();
        disarm();
        assert_eq!(hit(points::SOLVE_PHASE1), None);
        assert!(!is_armed());
    }

    #[test]
    fn after_and_times_gate_firing_deterministically() {
        let _gate = exclusive();
        let plan = FaultPlan::new(
            7,
            vec![FaultSpec {
                point: points::EVENT_APPLY.to_string(),
                action: FaultAction::TransientError,
                after: 2,
                times: 2,
            }],
        );
        let _guard = arm(&plan);
        let fires: Vec<bool> = (0..6).map(|_| hit(points::EVENT_APPLY).is_some()).collect();
        assert_eq!(fires, vec![false, false, true, true, false, false]);
        assert_eq!(fired(points::EVENT_APPLY), 2);
        // Other points are untouched.
        assert_eq!(hit(points::TCP_READ), None);
    }

    #[test]
    fn panic_action_panics_with_point_name() {
        let _gate = exclusive();
        let plan = FaultPlan::new(
            0,
            vec![FaultSpec::once(points::SERVER_RESOLVE, FaultAction::Panic)],
        );
        let _guard = arm(&plan);
        let err = std::panic::catch_unwind(|| hit(points::SERVER_RESOLVE))
            .expect_err("injected panic should fire");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("injected fault at server.resolve"), "{msg}");
        // Once only: the second hit is clean.
        assert_eq!(hit(points::SERVER_RESOLVE), None);
    }

    #[test]
    fn guard_drop_disarms() {
        let _gate = exclusive();
        let plan = FaultPlan::new(
            0,
            vec![FaultSpec::once(
                points::TCP_READ,
                FaultAction::TransientError,
            )],
        );
        {
            let _guard = arm(&plan);
            assert!(is_armed());
        }
        assert!(!is_armed());
        assert_eq!(hit(points::TCP_READ), None);
    }

    #[test]
    fn plan_round_trips_through_json() {
        let plan = FaultPlan::new(
            99,
            vec![
                FaultSpec::once(points::SOLVE_PHASE1, FaultAction::Panic),
                FaultSpec {
                    point: points::SERVER_RESOLVE.to_string(),
                    action: FaultAction::DelayMillis(250),
                    after: 1,
                    times: 3,
                },
                FaultSpec::once(points::EVENT_APPLY, FaultAction::FloodEvents(500)),
                FaultSpec {
                    point: points::TCP_READ.to_string(),
                    action: FaultAction::TransientError,
                    after: 0,
                    times: 0,
                },
            ],
        );
        let text = plan.to_json().to_string_pretty();
        let back = FaultPlan::from_json(&dmn_json::parse(&text).expect("valid json"))
            .expect("plan parses");
        assert_eq!(back, plan);
    }

    #[test]
    fn from_json_rejects_unknown_action() {
        let doc = dmn_json::parse(r#"{"inject": [{"point": "x", "action": "explode"}]}"#).unwrap();
        let err = FaultPlan::from_json(&doc).expect_err("unknown action");
        assert!(err.contains("explode"), "{err}");
    }
}
