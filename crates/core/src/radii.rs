//! Write radii, storage radii and storage numbers (Section 2.1).
//!
//! For a node `v`, let `R^z_v` be the `z` requests closest to `v` and
//! `d(v, z)` their average distance from `v`. The paper defines
//!
//! * the **write radius** `rw(v) := d(v, W)` with `W` the total write
//!   frequency of the object, and
//! * the **storage number** `zs(v)` and **storage radius** `rs(v)` chosen
//!   such that
//!   `(zs − 1)·rs ≤ cs(v) < zs·rs` and `d(v, zs − 1) ≤ rs < d(v, zs)`.
//!
//! Both radii estimate how far the nearest copy *should* be from `v` in a
//! good placement: within `~rw(v)` a copy pays off against write traffic;
//! within `~rs(v)` it pays off against its storage cost.
//!
//! Requests are weighted (a node with frequency `f` contributes `f` unit
//! requests at its location), so `z` ranges over the reals and the
//! cumulative distance function `g(z) = z · d(v, z)` is piecewise linear.

use dmn_graph::{Metric, NodeId};

/// Per-node distance profile: requests sorted by distance with prefix sums.
///
/// `g(z)` = sum of distances of the `z` closest request units; `d(v, z)`
/// = `g(z) / z`.
#[derive(Debug, Clone)]
pub struct DistanceProfile {
    /// (distance, request mass at that distance), sorted by distance.
    entries: Vec<(f64, f64)>,
    /// Prefix sums of mass.
    cum_mass: Vec<f64>,
    /// Prefix sums of mass * distance.
    cum_cost: Vec<f64>,
}

impl DistanceProfile {
    /// Builds the profile of node `v` against the request `masses`
    /// (combined read + write frequency per node).
    pub fn new(metric: &Metric, masses: &[f64], v: NodeId) -> Self {
        let row = metric.row(v);
        let mut entries: Vec<(f64, f64)> = masses
            .iter()
            .enumerate()
            .filter(|&(_, &m)| m > 0.0)
            .map(|(u, &m)| (row[u], m))
            .collect();
        entries.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("distances are not NaN"));
        let mut cum_mass = Vec::with_capacity(entries.len());
        let mut cum_cost = Vec::with_capacity(entries.len());
        let (mut m_acc, mut c_acc) = (0.0, 0.0);
        for &(d, m) in &entries {
            m_acc += m;
            c_acc += m * d;
            cum_mass.push(m_acc);
            cum_cost.push(c_acc);
        }
        DistanceProfile {
            entries,
            cum_mass,
            cum_cost,
        }
    }

    /// Total request mass in the profile.
    pub fn total_mass(&self) -> f64 {
        self.cum_mass.last().copied().unwrap_or(0.0)
    }

    /// `g(z)`: the summed distance of the `z` closest request units
    /// (`f64::INFINITY` when `z` exceeds the total mass — there is no such
    /// request set).
    pub fn cum_dist(&self, z: f64) -> f64 {
        if z <= 0.0 {
            return 0.0;
        }
        if z > self.total_mass() + 1e-12 {
            return f64::INFINITY;
        }
        // Binary search for the first prefix covering mass z.
        let i = self.cum_mass.partition_point(|&m| m < z);
        let i = i.min(self.entries.len() - 1);
        let (prev_mass, prev_cost) = if i == 0 {
            (0.0, 0.0)
        } else {
            (self.cum_mass[i - 1], self.cum_cost[i - 1])
        };
        prev_cost + (z - prev_mass) * self.entries[i].0
    }

    /// `d(v, z)`: average distance of the `z` closest request units
    /// (0 for `z <= 0`).
    pub fn avg_dist(&self, z: f64) -> f64 {
        if z <= 0.0 {
            return 0.0;
        }
        self.cum_dist(z) / z
    }

    /// The paper's storage number `zs(v)` and storage radius `rs(v)` for
    /// storage cost `cs`: the smallest integer `z` with `g(z) > cs`, and a
    /// radius from `[d(v, zs−1), d(v, zs)) ∩ (cs/zs, cs/(zs−1)]`.
    ///
    /// When even all requests together cost no more than `cs`
    /// (`g(total) <= cs`), storing a copy for `v`'s neighbourhood can never
    /// pay off and `(zs, rs) = (∞, ∞)` is returned.
    ///
    /// Degenerate boundary: when `cs` is so small that the paper's strict
    /// bracket `(zs−1)·rs <= cs < zs·rs` admits no radius (e.g. `cs = 0`
    /// with request mass at distance 0 — the bracket demands `rs <= 0` and
    /// `rs > 0` simultaneously), the closed-boundary value satisfying
    /// `(zs−1)·rs <= cs <= zs·rs` is returned instead. Every inequality
    /// the paper's proofs actually use (Lemma 4's case split, Claim 10's
    /// `cs <= zs·rs`) holds non-strictly, so the guarantee is unaffected.
    pub fn storage_number_and_radius(&self, cs: f64) -> (f64, f64) {
        let total = self.total_mass();
        if self.cum_dist(total) <= cs {
            return (f64::INFINITY, f64::INFINITY);
        }
        // Smallest integer zs with g(zs) > cs. g is nondecreasing and
        // piecewise linear; scan by binary search on integers.
        let (mut lo, mut hi) = (0u64, total.ceil() as u64);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.cum_dist(mid as f64) > cs {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        let zs = lo as f64;
        debug_assert!(zs >= 1.0);
        let d_lo = self.avg_dist(zs - 1.0);
        let d_hi = self.avg_dist(zs.min(total)); // g(zs) may interpolate past the last request
        let lo_bound = d_lo.max(cs / zs);
        let hi_bound = if zs > 1.0 {
            d_hi.min(cs / (zs - 1.0))
        } else {
            d_hi
        };
        let rs = if hi_bound > lo_bound {
            0.5 * (lo_bound + hi_bound)
        } else {
            lo_bound
        };
        (zs, rs)
    }
}

/// All radii of one object over the whole node set.
#[derive(Debug, Clone)]
pub struct RadiusTable {
    /// Write radius `rw(v) = d(v, W)`.
    pub write_radius: Vec<f64>,
    /// Storage radius `rs(v)`.
    pub storage_radius: Vec<f64>,
    /// Storage number `zs(v)` (∞ when a copy near `v` can never pay off).
    pub storage_number: Vec<f64>,
}

impl RadiusTable {
    /// Computes write and storage radii for every node.
    ///
    /// * `masses` — combined request mass per node (`fr + fw`),
    /// * `total_writes` — the paper's `W`,
    /// * `storage_cost` — `cs` per node.
    pub fn compute(
        metric: &Metric,
        masses: &[f64],
        total_writes: f64,
        storage_cost: &[f64],
    ) -> Self {
        let n = metric.len();
        assert_eq!(masses.len(), n);
        assert_eq!(storage_cost.len(), n);
        let mut write_radius = vec![0.0; n];
        let mut storage_radius = vec![0.0; n];
        let mut storage_number = vec![0.0; n];
        for v in 0..n {
            let profile = DistanceProfile::new(metric, masses, v);
            write_radius[v] = if total_writes > 0.0 {
                profile.avg_dist(total_writes)
            } else {
                0.0
            };
            let (zs, rs) = profile.storage_number_and_radius(storage_cost[v]);
            storage_number[v] = zs;
            storage_radius[v] = rs;
        }
        RadiusTable {
            write_radius,
            storage_radius,
            storage_number,
        }
    }

    /// `max(rw(v), rs(v))` — the paper's proximity requirement for proper
    /// placements.
    pub fn max_radius(&self, v: NodeId) -> f64 {
        self.write_radius[v].max(self.storage_radius[v])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Requests: mass 2 at distance 0, mass 1 at distance 4, mass 3 at
    /// distance 10 (from a line metric).
    fn profile() -> DistanceProfile {
        let m = Metric::from_line(&[0.0, 0.0, 4.0, 10.0]);
        let masses = vec![1.0, 1.0, 1.0, 3.0];
        DistanceProfile::new(&m, &masses, 0)
    }

    #[test]
    fn cumulative_and_average_distances() {
        let p = profile();
        assert_eq!(p.total_mass(), 6.0);
        assert_eq!(p.cum_dist(0.0), 0.0);
        assert_eq!(p.cum_dist(2.0), 0.0);
        assert_eq!(p.cum_dist(3.0), 4.0);
        assert_eq!(p.cum_dist(2.5), 2.0, "interpolates inside an entry");
        assert_eq!(p.cum_dist(4.0), 14.0);
        assert_eq!(p.cum_dist(6.0), 34.0);
        assert!(p.cum_dist(6.5).is_infinite());
        assert_eq!(p.avg_dist(4.0), 3.5);
        assert_eq!(p.avg_dist(0.0), 0.0);
    }

    #[test]
    fn avg_dist_is_monotone_in_z() {
        let p = profile();
        let mut last = 0.0;
        for i in 0..=60 {
            let z = i as f64 * 0.1;
            let d = p.avg_dist(z);
            assert!(d + 1e-12 >= last, "avg_dist must be nondecreasing at z={z}");
            last = d;
        }
    }

    #[test]
    fn storage_number_definition_holds() {
        let p = profile();
        for cs in [0.0, 0.5, 3.0, 4.0, 7.9, 14.0, 20.0, 33.9] {
            let (zs, rs) = p.storage_number_and_radius(cs);
            assert!(zs.is_finite(), "cs={cs}");
            // Defining inequalities of the paper (allowing the closed
            // boundary our midpoint choice may hit):
            let g_before = p.cum_dist(zs - 1.0);
            let g_after = p.cum_dist(zs);
            assert!(g_before <= cs + 1e-9, "cs={cs}: g(zs-1)={g_before}");
            assert!(g_after > cs - 1e-9, "cs={cs}: g(zs)={g_after}");
            assert!(rs + 1e-9 >= p.avg_dist(zs - 1.0), "cs={cs}");
            assert!((zs - 1.0) * rs <= cs + 1e-9, "cs={cs}: lower bracket");
            assert!(cs <= zs * rs + 1e-9, "cs={cs}: upper bracket");
        }
    }

    #[test]
    fn storage_radius_infinite_when_storage_never_pays() {
        let p = profile();
        // g(total) = 34; storing costs more than serving everything.
        let (zs, rs) = p.storage_number_and_radius(34.0);
        assert!(zs.is_infinite());
        assert!(rs.is_infinite());
    }

    #[test]
    fn radius_table_on_a_path() {
        // Path metric 0-1-2 with unit edges; one read everywhere, one write
        // at node 2. W = 1.
        let m = Metric::from_line(&[0.0, 1.0, 2.0]);
        let masses = vec![1.0, 1.0, 2.0];
        let cs = vec![1.5; 3];
        let t = RadiusTable::compute(&m, &masses, 1.0, &cs);
        // rw(v) = distance of the single closest request = 0 for everyone
        // (every node has local request mass).
        assert_eq!(t.write_radius, vec![0.0; 3]);
        // zs(0): g(1)=0, g(2)=1 (node1), g(3)=3 -> first g > 1.5 is z=3.
        assert_eq!(t.storage_number[0], 3.0);
        assert!(t.storage_radius[0] > 0.0 && t.storage_radius[0].is_finite());
        assert_eq!(t.max_radius(0), t.storage_radius[0]);
    }

    #[test]
    fn write_radius_zero_for_read_only() {
        let m = Metric::from_line(&[0.0, 5.0]);
        let t = RadiusTable::compute(&m, &[1.0, 1.0], 0.0, &[1.0, 1.0]);
        assert_eq!(t.write_radius, vec![0.0, 0.0]);
    }

    #[test]
    fn empty_profile_never_pays() {
        let m = Metric::from_line(&[0.0, 1.0]);
        let p = DistanceProfile::new(&m, &[0.0, 0.0], 0);
        assert_eq!(p.total_mass(), 0.0);
        let (zs, rs) = p.storage_number_and_radius(0.0);
        assert!(zs.is_infinite() && rs.is_infinite());
    }
}
