//! The non-uniform model: objects with individual sizes.
//!
//! Section 1.1 assumes uniform object sizes "for simplicity" and notes that
//! *"all our results hold also in a non-uniform model"*. This module makes
//! that concrete: an object has a transfer size (bytes moved per request /
//! update) and a storage size (bytes held per copy). Fees are per byte, so
//!
//! * read/update terms scale by `transfer_size`, and
//! * storage terms scale by `storage_size`.
//!
//! The placement problem for a shaped object is *identical* to a uniform
//! problem with storage costs rescaled by `storage_size / transfer_size`
//! (and the whole objective multiplied by `transfer_size`) — which is why
//! every algorithm in the workspace carries over unchanged: rescale, place,
//! evaluate. [`equivalent_storage_costs`] performs the rescale and
//! [`evaluate_object_shaped`] prices the result.

use dmn_graph::{Metric, NodeId};

use crate::cost::{evaluate_object, CostBreakdown, UpdatePolicy};
use crate::instance::ObjectWorkload;

/// Per-object sizes of the non-uniform model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectShape {
    /// Bytes transmitted when the object is read or updated.
    pub transfer_size: f64,
    /// Bytes occupied by one copy.
    pub storage_size: f64,
}

impl Default for ObjectShape {
    fn default() -> Self {
        ObjectShape {
            transfer_size: 1.0,
            storage_size: 1.0,
        }
    }
}

impl ObjectShape {
    /// A shape with equal transfer and storage size.
    pub fn uniform(size: f64) -> Self {
        assert!(size > 0.0 && size.is_finite());
        ObjectShape {
            transfer_size: size,
            storage_size: size,
        }
    }

    /// Validates the shape.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.transfer_size > 0.0 && self.transfer_size.is_finite()) {
            return Err(format!("invalid transfer size {}", self.transfer_size));
        }
        if !(self.storage_size > 0.0 && self.storage_size.is_finite()) {
            return Err(format!("invalid storage size {}", self.storage_size));
        }
        Ok(())
    }
}

/// The uniform-model storage costs that make a uniform placement problem
/// equivalent to the shaped one (up to the global `transfer_size` factor):
/// `cs'(v) = cs(v) * storage_size / transfer_size`.
pub fn equivalent_storage_costs(storage_cost: &[f64], shape: ObjectShape) -> Vec<f64> {
    shape.validate().expect("valid shape");
    let f = shape.storage_size / shape.transfer_size;
    storage_cost.iter().map(|c| c * f).collect()
}

/// Evaluates a copy set for a shaped object: per-byte fees applied to the
/// object's actual sizes.
pub fn evaluate_object_shaped(
    metric: &Metric,
    storage_cost: &[f64],
    workload: &ObjectWorkload,
    copies: &[NodeId],
    policy: UpdatePolicy,
    shape: ObjectShape,
) -> CostBreakdown {
    shape.validate().expect("valid shape");
    let base = evaluate_object(metric, storage_cost, workload, copies, policy);
    CostBreakdown {
        storage: base.storage * shape.storage_size,
        read: base.read * shape.transfer_size,
        write_serve: base.write_serve * shape.transfer_size,
        multicast: base.multicast * shape.transfer_size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Metric, Vec<f64>, ObjectWorkload) {
        let m = Metric::from_line(&[0.0, 1.0, 3.0]);
        let cs = vec![2.0, 5.0, 2.0];
        let mut w = ObjectWorkload::new(3);
        w.reads[0] = 2.0;
        w.writes[2] = 1.0;
        (m, cs, w)
    }

    #[test]
    fn uniform_shape_scales_total_linearly() {
        let (m, cs, w) = setup();
        let base = evaluate_object(&m, &cs, &w, &[1], UpdatePolicy::MstMulticast);
        let shaped = evaluate_object_shaped(
            &m,
            &cs,
            &w,
            &[1],
            UpdatePolicy::MstMulticast,
            ObjectShape::uniform(7.0),
        );
        assert!((shaped.total() - 7.0 * base.total()).abs() < 1e-9);
    }

    #[test]
    fn uniform_scaling_preserves_the_optimal_placement() {
        let (m, cs, w) = setup();
        let best_for = |shape: ObjectShape| -> Vec<usize> {
            let mut best = (f64::INFINITY, vec![]);
            for mask in 1usize..8 {
                let copies: Vec<usize> = (0..3).filter(|v| mask >> v & 1 == 1).collect();
                let c =
                    evaluate_object_shaped(&m, &cs, &w, &copies, UpdatePolicy::MstMulticast, shape);
                if c.total() < best.0 {
                    best = (c.total(), copies);
                }
            }
            best.1
        };
        assert_eq!(
            best_for(ObjectShape::uniform(1.0)),
            best_for(ObjectShape::uniform(42.0))
        );
    }

    #[test]
    fn skewed_shape_equals_rescaled_uniform_problem() {
        let (m, cs, w) = setup();
        let shape = ObjectShape {
            transfer_size: 2.0,
            storage_size: 6.0,
        };
        let cs_eq = equivalent_storage_costs(&cs, shape);
        for mask in 1usize..8 {
            let copies: Vec<usize> = (0..3).filter(|v| mask >> v & 1 == 1).collect();
            let shaped =
                evaluate_object_shaped(&m, &cs, &w, &copies, UpdatePolicy::MstMulticast, shape);
            let uniform = evaluate_object(&m, &cs_eq, &w, &copies, UpdatePolicy::MstMulticast);
            assert!(
                (shaped.total() - shape.transfer_size * uniform.total()).abs() < 1e-9,
                "copies {copies:?}"
            );
        }
    }

    #[test]
    fn heavy_storage_objects_replicate_less() {
        // Same workload, two shapes: storage-heavy objects should hold
        // fewer copies in their optimal placement.
        let m = Metric::from_line(&[0.0, 4.0, 8.0, 12.0]);
        let cs = vec![1.0; 4];
        let mut w = ObjectWorkload::new(4);
        for v in 0..4 {
            w.reads[v] = 1.0;
        }
        let count_best = |shape: ObjectShape| -> usize {
            let mut best = (f64::INFINITY, 0usize);
            for mask in 1usize..16 {
                let copies: Vec<usize> = (0..4).filter(|v| mask >> v & 1 == 1).collect();
                let c =
                    evaluate_object_shaped(&m, &cs, &w, &copies, UpdatePolicy::MstMulticast, shape)
                        .total();
                if c < best.0 {
                    best = (c, copies.len());
                }
            }
            best.1
        };
        let light = count_best(ObjectShape {
            transfer_size: 1.0,
            storage_size: 1.0,
        });
        let heavy = count_best(ObjectShape {
            transfer_size: 1.0,
            storage_size: 20.0,
        });
        assert!(heavy < light, "heavy {heavy} vs light {light}");
        assert_eq!(heavy, 1);
    }

    #[test]
    #[should_panic(expected = "valid shape")]
    fn zero_size_rejected() {
        let (m, cs, w) = setup();
        evaluate_object_shaped(
            &m,
            &cs,
            &w,
            &[0],
            UpdatePolicy::MstMulticast,
            ObjectShape {
                transfer_size: 0.0,
                storage_size: 1.0,
            },
        );
    }
}
