//! Process-wide telemetry: counters, gauges, log-scale latency
//! histograms, and span tracing.
//!
//! Three primitives, all registered in one process-global registry:
//!
//! * **[`Counter`] / [`Gauge`]** — lock-free atomic cells interned by
//!   name ([`counter`], [`gauge`]). Handles are `&'static`, so hot paths
//!   resolve the name once and then pay a single relaxed atomic op per
//!   record.
//! * **[`Histogram`]** — a fixed-bucket log-scale latency histogram
//!   (16 linear sub-buckets per power of two, covering ~1 ns to ~17 Gs).
//!   Recording is O(1): the bucket index is extracted from the raw f64
//!   bits (exponent + top mantissa bits), so bucketing is deterministic
//!   — no `log2` rounding wobble across platforms. Quantiles read from a
//!   [`HistogramSnapshot`] carry a pinned relative-error bound of
//!   `1/32` (≈ 3.2 %, the half-width of the widest sub-bucket);
//!   snapshots merge associatively and round-trip through JSON.
//! * **[`Span`]** — a lightweight timed region ([`span`] /
//!   [`Span::finish`]). Spans *always* measure (the returned elapsed
//!   seconds feed `SolveReport` phase stats, which must exist even with
//!   telemetry off) but only *record* into a bounded ring buffer
//!   (capacity [`SPAN_RING_CAPACITY`]) when the registry is enabled.
//!   The ring exports as JSONL via [`spans_jsonl`].
//!
//! # Disarm / overhead contract
//!
//! Mirroring [`crate::faults`]: the registry holds one process-global
//! `enabled` flag, and **the disabled cost of any telemetry decision is
//! a single relaxed atomic load** ([`enabled`]). Hot paths guard their
//! instrumentation on it — e.g. the server samples lookup latency only
//! when `enabled()` — and [`Span::finish`] checks it before touching
//! the ring. Counters and gauges are so cheap (one relaxed RMW) that
//! call sites may record unconditionally; the flag gates everything
//! that costs more than an atomic op. The perf-smoke `obs_ok` gate pins
//! the end-to-end consequence: telemetry-enabled sustained lookup
//! throughput stays within 10 % of disabled.
//!
//! The enabled flag is process-global (like the fault armory), so tests
//! and benches that toggle it or assert on registry contents must
//! serialize through [`exclusive`]. When a test needs both gates, take
//! [`crate::faults::exclusive`] **first**, then [`exclusive`] — chaos
//! harnesses hold them in that order.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use dmn_json::Json;

/// Canonical metric names. Instrumented code references these constants
/// so dashboards, the Prometheus exposition, and assertions can't drift
/// apart. Labelled counters append `{key="value"}` to a base name — the
/// exposition prints interned names verbatim.
pub mod names {
    /// Sampled lookup service latency on the server hot path (seconds).
    pub const SERVER_LOOKUP_SECONDS: &str = "dmn_server_lookup_seconds";
    /// Current pending-delta queue depth (gauge).
    pub const SERVER_QUEUE_DEPTH: &str = "dmn_server_event_queue_depth";
    /// Deltas shed by the bounded event queue (counter).
    pub const SERVER_SHED_DELTAS_TOTAL: &str = "dmn_server_shed_deltas_total";
    /// Re-solve attempts started (counter).
    pub const SERVER_RESOLVE_ATTEMPTS_TOTAL: &str = "dmn_server_resolve_attempts_total";
    /// Re-solve attempts that failed (error, timeout, or panic).
    pub const SERVER_RESOLVE_FAILURES_TOTAL: &str = "dmn_server_resolve_failures_total";
    /// Epoch swaps published (counter).
    pub const SERVER_EPOCH_SWAPS_TOTAL: &str = "dmn_server_epoch_swaps_total";
    /// Base name for per-point fault-fired counters; see
    /// [`fault_fired_total`](super::fault_fired_total).
    pub const FAULTS_FIRED_TOTAL: &str = "dmn_faults_fired_total";
}

/// Canonical span names (one per timed region).
pub mod spans {
    /// Phase 1 of one object's solve: facility location.
    pub const SOLVE_FACILITY: &str = "solve.facility";
    /// Phase 2: radius-based copy addition.
    pub const SOLVE_RADIUS_ADD: &str = "solve.radius-add";
    /// Phase 3: write-radius pruning.
    pub const SOLVE_RADIUS_PRUNE: &str = "solve.radius-prune";
    /// Truncated-closure build on the sparse metric path.
    pub const SOLVE_METRIC_BUILD: &str = "solve.metric-build";
    /// One whole object's placement (all phases).
    pub const SOLVE_OBJECT: &str = "solve.object";
    /// One re-solve attempt in the server worker.
    pub const SERVER_RESOLVE_ATTEMPT: &str = "server.resolve-attempt";
    /// Publishing a new placement epoch (snapshot swap + drift settle).
    pub const SERVER_EPOCH_SWAP: &str = "server.epoch-swap";
}

/// Spans recorded beyond this are kept newest-first: the ring drops its
/// oldest record on overflow.
pub const SPAN_RING_CAPACITY: usize = 4096;

/// The pinned relative-error bound on histogram quantiles: half the
/// width of the widest sub-bucket, `(1/16)/2 = 1/32`. Property tests
/// assert observed error stays below this.
pub const HISTOGRAM_RELATIVE_ERROR: f64 = 1.0 / 32.0;

// Histogram geometry: 16 linear sub-buckets per power of two, octaves
// 2^-30 .. 2^34 (~0.93 ns to ~1.7e10 s). Out-of-range values clamp to
// the edge buckets.
const SUB_BUCKETS: usize = 16;
const MIN_EXP: i32 = -30;
const OCTAVES: usize = 64;
const NUM_BUCKETS: usize = OCTAVES * SUB_BUCKETS;

/// A monotonically increasing atomic counter.
#[derive(Debug)]
pub struct Counter(AtomicU64);

impl Counter {
    fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins atomic gauge.
#[derive(Debug)]
pub struct Gauge(AtomicI64);

impl Gauge {
    fn new() -> Gauge {
        Gauge(AtomicI64::new(0))
    }

    /// Sets the current value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the current value by `delta`.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The bucket a value lands in, from its raw IEEE-754 bits: unbiased
/// exponent selects the octave, the top 4 mantissa bits the sub-bucket.
/// Deterministic — no floating-point log involved.
fn bucket_index(v: f64) -> usize {
    if !v.is_finite() || v <= 0.0 {
        return 0;
    }
    let bits = v.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i64 - 1023;
    let sub = ((bits >> 48) & 0xf) as i64;
    let idx = (exp - MIN_EXP as i64) * SUB_BUCKETS as i64 + sub;
    idx.clamp(0, NUM_BUCKETS as i64 - 1) as usize
}

/// The representative value reported for a bucket: its midpoint. Each
/// sub-bucket spans `[2^e·(1+s/16), 2^e·(1+(s+1)/16))`, so the midpoint
/// is within [`HISTOGRAM_RELATIVE_ERROR`] of every member.
fn bucket_value(idx: usize) -> f64 {
    let exp = MIN_EXP + (idx / SUB_BUCKETS) as i32;
    let sub = (idx % SUB_BUCKETS) as f64;
    2f64.powi(exp) * (1.0 + (sub + 0.5) / SUB_BUCKETS as f64)
}

fn atomic_f64_add(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + v).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

fn atomic_f64_extreme(cell: &AtomicU64, v: f64, keep: impl Fn(f64, f64) -> bool) {
    let mut cur = cell.load(Ordering::Relaxed);
    while keep(v, f64::from_bits(cur)) {
        match cell.compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// A fixed-bucket log-scale histogram with lock-free O(1) recording.
/// See the module docs for the bucket geometry and error bound.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
    buckets: Vec<AtomicU64>,
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Records one observation. Negative and non-finite values clamp to
    /// zero (the underflow bucket). Safe to call from any thread; the
    /// total count is exact under concurrency.
    pub fn record(&self, v: f64) {
        let v = if v.is_finite() && v > 0.0 { v } else { 0.0 };
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_add(&self.sum_bits, v);
        atomic_f64_extreme(&self.min_bits, v, |a, b| a < b);
        atomic_f64_extreme(&self.max_bits, v, |a, b| a > b);
    }

    /// A point-in-time copy of the histogram state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i, n))
            })
            .collect();
        let (min, max) = if count == 0 {
            (0.0, 0.0)
        } else {
            (
                f64::from_bits(self.min_bits.load(Ordering::Relaxed)),
                f64::from_bits(self.max_bits.load(Ordering::Relaxed)),
            )
        };
        HistogramSnapshot {
            count,
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            min,
            max,
            buckets,
        }
    }

    /// Zeroes the histogram. Meant for benchmark/test isolation (fresh
    /// per-run quantiles); hold [`exclusive`] so concurrent recorders
    /// aren't half-counted across the reset.
    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
        self.min_bits
            .store(f64::INFINITY.to_bits(), Ordering::Relaxed);
        self.max_bits
            .store(f64::NEG_INFINITY.to_bits(), Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// A plain-data copy of a [`Histogram`], with quantile reads, merging,
/// and JSON round-tripping. `buckets` holds sparse
/// `(bucket index, count)` pairs in ascending index order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HistogramSnapshot {
    /// Total observations (exact).
    pub count: u64,
    /// Sum of observations (subject to float addition order under
    /// concurrent recording).
    pub sum: f64,
    /// Smallest observation; `0.0` when empty.
    pub min: f64,
    /// Largest observation; `0.0` when empty.
    pub max: f64,
    /// Sparse non-empty buckets, ascending by index.
    pub buckets: Vec<(usize, u64)>,
}

impl HistogramSnapshot {
    /// The `q`-quantile (`q` in `[0, 1]`): the representative value of
    /// the bucket containing the rank-`⌈q·count⌉` observation, clamped
    /// into `[min, max]`. Relative error vs. the true quantile is
    /// bounded by [`HISTOGRAM_RELATIVE_ERROR`]. Returns `0.0` when
    /// empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(idx, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_value(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Mean observation; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The merge of two snapshots: per-bucket count sums, summed `sum`,
    /// combined extremes. Associative and commutative on every field
    /// except `sum` (float addition order), whose bucket-derived
    /// quantiles are unaffected.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets: BTreeMap<usize, u64> = self.buckets.iter().copied().collect();
        for &(idx, n) in &other.buckets {
            *buckets.entry(idx).or_insert(0) += n;
        }
        let (min, max) = match (self.count, other.count) {
            (0, _) => (other.min, other.max),
            (_, 0) => (self.min, self.max),
            _ => (self.min.min(other.min), self.max.max(other.max)),
        };
        HistogramSnapshot {
            count: self.count + other.count,
            sum: self.sum + other.sum,
            min,
            max,
            buckets: buckets.into_iter().collect(),
        }
    }

    /// JSON rendering: stored fields plus derived `p50`/`p95`/`p99`
    /// (recomputed, not stored, so [`from_json`](Self::from_json)
    /// round-trips exactly).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::Num(self.count as f64)),
            ("sum", Json::Num(self.sum)),
            ("min", Json::Num(self.min)),
            ("max", Json::Num(self.max)),
            ("p50", Json::Num(self.quantile(0.50))),
            ("p95", Json::Num(self.quantile(0.95))),
            ("p99", Json::Num(self.quantile(0.99))),
            (
                "buckets",
                Json::arr(
                    self.buckets.iter().map(|&(idx, n)| {
                        Json::Arr(vec![Json::Num(idx as f64), Json::Num(n as f64)])
                    }),
                ),
            ),
        ])
    }

    /// Parses a snapshot previously rendered by
    /// [`to_json`](Self::to_json).
    ///
    /// # Errors
    /// A message naming the missing or malformed field.
    pub fn from_json(doc: &Json) -> Result<HistogramSnapshot, String> {
        let num = |key: &str| {
            doc.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("histogram snapshot needs numeric '{key}'"))
        };
        let buckets = doc
            .get("buckets")
            .and_then(Json::as_arr)
            .ok_or("histogram snapshot needs a 'buckets' array")?
            .iter()
            .map(|pair| {
                let pair = pair.as_arr().filter(|p| p.len() == 2);
                let idx = pair.and_then(|p| p[0].as_usize());
                let n = pair.and_then(|p| p[1].as_usize());
                match (idx, n) {
                    (Some(idx), Some(n)) => Ok((idx, n as u64)),
                    _ => Err("histogram bucket must be an [index, count] pair".to_string()),
                }
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(HistogramSnapshot {
            count: num("count")? as u64,
            sum: num("sum")?,
            min: num("min")?,
            max: num("max")?,
            buckets,
        })
    }
}

/// One finished span in the ring buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name (see [`spans`]).
    pub name: &'static str,
    /// Start time, seconds since the registry's process epoch.
    pub start_seconds: f64,
    /// Wall-clock duration in seconds.
    pub duration_seconds: f64,
}

impl SpanRecord {
    /// The JSONL line form (compact, single line).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::Str(self.name.to_string())),
            ("start", Json::Num(self.start_seconds)),
            ("seconds", Json::Num(self.duration_seconds)),
        ])
    }
}

/// An open timed region; see [`span`].
#[must_use = "a span measures nothing until finished"]
pub struct Span {
    name: &'static str,
    start: Instant,
}

impl Span {
    /// Ends the span, returning its wall-clock seconds. The elapsed
    /// time is always measured; the record enters the ring buffer only
    /// when telemetry is enabled.
    pub fn finish(self) -> f64 {
        let seconds = self.start.elapsed().as_secs_f64();
        if enabled() {
            let r = registry();
            let start_seconds = self.start.saturating_duration_since(r.epoch).as_secs_f64();
            let mut ring = heal(r.spans.lock());
            if ring.len() == SPAN_RING_CAPACITY {
                ring.pop_front();
            }
            ring.push_back(SpanRecord {
                name: self.name,
                start_seconds,
                duration_seconds: seconds,
            });
        }
        seconds
    }
}

/// Opens a span. Cost when telemetry is disabled: one `Instant::now()`
/// here and one relaxed load + clock read in [`Span::finish`] — cheap
/// enough for per-phase and per-object solve instrumentation, too
/// expensive for per-lookup use (the server samples instead).
pub fn span(name: &'static str) -> Span {
    Span {
        name,
        start: Instant::now(),
    }
}

struct Registry {
    enabled: AtomicBool,
    counters: Mutex<BTreeMap<String, &'static Counter>>,
    gauges: Mutex<BTreeMap<String, &'static Gauge>>,
    histograms: Mutex<BTreeMap<String, &'static Histogram>>,
    spans: Mutex<VecDeque<SpanRecord>>,
    epoch: Instant,
    test_gate: Mutex<()>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        enabled: AtomicBool::new(false),
        counters: Mutex::new(BTreeMap::new()),
        gauges: Mutex::new(BTreeMap::new()),
        histograms: Mutex::new(BTreeMap::new()),
        spans: Mutex::new(VecDeque::new()),
        epoch: Instant::now(),
        test_gate: Mutex::new(()),
    })
}

fn heal<'a, T>(
    r: Result<MutexGuard<'a, T>, std::sync::PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    // Registry state is counters and plain records; a panic while a
    // guard was live leaves it consistent.
    r.unwrap_or_else(|e| e.into_inner())
}

/// Serialize tests (and benches) that toggle the process-global enabled
/// flag or assert on registry contents. Lock order with the fault
/// armory: [`crate::faults::exclusive`] first, then this.
pub fn exclusive() -> MutexGuard<'static, ()> {
    heal(registry().test_gate.lock())
}

/// True when telemetry recording is enabled. One relaxed atomic load —
/// this is the whole disarmed cost of a guarded instrumentation site.
#[inline]
pub fn enabled() -> bool {
    registry().enabled.load(Ordering::Relaxed)
}

/// Enables or disables recording process-wide.
pub fn set_enabled(on: bool) {
    registry().enabled.store(on, Ordering::SeqCst);
}

/// The counter interned under `name`; created zeroed on first use.
/// Resolve once and keep the `&'static` handle on hot paths — interning
/// takes the registry lock.
pub fn counter(name: &str) -> &'static Counter {
    let mut map = heal(registry().counters.lock());
    if let Some(c) = map.get(name) {
        return c;
    }
    let c: &'static Counter = Box::leak(Box::new(Counter::new()));
    map.insert(name.to_string(), c);
    c
}

/// The gauge interned under `name`; created zeroed on first use.
pub fn gauge(name: &str) -> &'static Gauge {
    let mut map = heal(registry().gauges.lock());
    if let Some(g) = map.get(name) {
        return g;
    }
    let g: &'static Gauge = Box::leak(Box::new(Gauge::new()));
    map.insert(name.to_string(), g);
    g
}

/// The histogram interned under `name`; created empty on first use.
pub fn histogram(name: &str) -> &'static Histogram {
    let mut map = heal(registry().histograms.lock());
    if let Some(h) = map.get(name) {
        return h;
    }
    let h: &'static Histogram = Box::leak(Box::new(Histogram::new()));
    map.insert(name.to_string(), h);
    h
}

/// The per-point fault-fired counter
/// (`dmn_faults_fired_total{point="<point>"}`). [`crate::faults`] bumps
/// this whenever a fault fires, so chaos harnesses and the metrics
/// endpoint share one counting path.
pub fn fault_fired_total(point: &str) -> &'static Counter {
    counter(&format!(
        "{}{{point=\"{point}\"}}",
        names::FAULTS_FIRED_TOTAL
    ))
}

/// Zeroes every counter, gauge, and histogram and clears the span ring.
/// Interned handles stay valid. For benches and tests (under
/// [`exclusive`]); production readers should diff counter values
/// instead.
pub fn reset() {
    let r = registry();
    for c in heal(r.counters.lock()).values() {
        c.0.store(0, Ordering::Relaxed);
    }
    for g in heal(r.gauges.lock()).values() {
        g.0.store(0, Ordering::Relaxed);
    }
    for h in heal(r.histograms.lock()).values() {
        h.reset();
    }
    heal(r.spans.lock()).clear();
}

/// A copy of the span ring, oldest first.
pub fn spans_snapshot() -> Vec<SpanRecord> {
    heal(registry().spans.lock()).iter().cloned().collect()
}

/// The span ring as JSONL: one compact
/// `{"name":...,"start":...,"seconds":...}` object per line, oldest
/// first. Empty string when no spans were recorded.
pub fn spans_jsonl() -> String {
    let mut out = String::new();
    for rec in heal(registry().spans.lock()).iter() {
        out.push_str(&rec.to_json().to_string_compact());
        out.push('\n');
    }
    out
}

/// The whole registry as one JSON document: counters and gauges by
/// name, histogram snapshots (with derived p50/p95/p99), and the span
/// ring occupancy. This is the `"snapshot"` half of the server's
/// `{"op":"metrics"}` response and the body of `METRICS_ci.json`.
pub fn snapshot_json() -> Json {
    let r = registry();
    let counters: BTreeMap<String, Json> = heal(r.counters.lock())
        .iter()
        .map(|(k, c)| (k.clone(), Json::Num(c.get() as f64)))
        .collect();
    let gauges: BTreeMap<String, Json> = heal(r.gauges.lock())
        .iter()
        .map(|(k, g)| (k.clone(), Json::Num(g.get() as f64)))
        .collect();
    let histograms: BTreeMap<String, Json> = heal(r.histograms.lock())
        .iter()
        .map(|(k, h)| (k.clone(), h.snapshot().to_json()))
        .collect();
    let spans_recorded = heal(r.spans.lock()).len();
    Json::obj([
        ("enabled", Json::Bool(enabled())),
        ("counters", Json::Obj(counters)),
        ("gauges", Json::Obj(gauges)),
        ("histograms", Json::Obj(histograms)),
        (
            "spans",
            Json::obj([
                ("recorded", Json::Num(spans_recorded as f64)),
                ("capacity", Json::Num(SPAN_RING_CAPACITY as f64)),
            ]),
        ),
    ])
}

/// The registry in Prometheus text exposition format: counters and
/// gauges as single samples, histograms as summaries
/// (`{quantile="…"}` samples plus `_sum` / `_count`). Labelled names
/// print verbatim; `# TYPE` lines cover each base name once.
pub fn prometheus_text() -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let r = registry();
    let mut typed: Option<String> = None;
    let mut type_line = |out: &mut String, name: &str, kind: &str| {
        let base = name.split('{').next().unwrap_or(name);
        if typed.as_deref() != Some(base) {
            let _ = writeln!(out, "# TYPE {base} {kind}");
            typed = Some(base.to_string());
        }
    };
    for (name, c) in heal(r.counters.lock()).iter() {
        type_line(&mut out, name, "counter");
        let _ = writeln!(out, "{name} {}", c.get());
    }
    for (name, g) in heal(r.gauges.lock()).iter() {
        type_line(&mut out, name, "gauge");
        let _ = writeln!(out, "{name} {}", g.get());
    }
    for (name, h) in heal(r.histograms.lock()).iter() {
        type_line(&mut out, name, "summary");
        let s = h.snapshot();
        for (q, label) in [(0.50, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
            let _ = writeln!(out, "{name}{{quantile=\"{label}\"}} {}", s.quantile(q));
        }
        let _ = writeln!(out, "{name}_sum {}", s.sum);
        let _ = writeln!(out, "{name}_count {}", s.count);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift64* — property tests must not depend on
    /// external RNG crates or ambient entropy.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        /// Uniform in [0, 1).
        fn f64(&mut self) -> f64 {
            (self.next() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    #[test]
    fn bucketing_is_deterministic_and_monotone() {
        let mut prev = 0;
        for i in 0..2000 {
            let v = 1e-9 * (1.25f64).powi(i % 100) * (1.0 + i as f64);
            let idx = bucket_index(v);
            assert_eq!(idx, bucket_index(v), "same value, same bucket");
            // The representative stays within the pinned relative error
            // for in-range values.
            let rep = bucket_value(idx);
            assert!(
                (rep - v).abs() / v <= HISTOGRAM_RELATIVE_ERROR + 1e-12,
                "value {v} bucket {idx} rep {rep}"
            );
            let _ = prev;
            prev = idx;
        }
        // Monotone: larger values never land in smaller buckets.
        let mut last = 0;
        for i in 0..500 {
            let v = 1e-8 * (1.1f64).powi(i);
            let idx = bucket_index(v);
            assert!(idx >= last, "bucket index is monotone in the value");
            last = idx;
        }
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-5.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(f64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn quantiles_stay_within_the_pinned_relative_error() {
        // Three seeded shapes: uniform, log-uniform (heavy dynamic
        // range), and a bimodal latency-like mix.
        for (seed, shape) in [(7u64, 0), (99, 1), (1234, 2)] {
            let mut rng = Rng(seed);
            let h = Histogram::new();
            let mut values: Vec<f64> = (0..20_000)
                .map(|_| match shape {
                    0 => 1e-6 + rng.f64() * 1e-3,
                    1 => 1e-9 * 10f64.powf(rng.f64() * 6.0),
                    _ => {
                        if rng.f64() < 0.9 {
                            5e-8 + rng.f64() * 5e-8
                        } else {
                            1e-3 + rng.f64() * 1e-3
                        }
                    }
                })
                .collect();
            for &v in &values {
                h.record(v);
            }
            values.sort_by(f64::total_cmp);
            let snap = h.snapshot();
            assert_eq!(snap.count, 20_000);
            for q in [0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999] {
                let approx = snap.quantile(q);
                let exact = exact_quantile(&values, q);
                let rel = (approx - exact).abs() / exact;
                assert!(
                    rel <= HISTOGRAM_RELATIVE_ERROR,
                    "seed {seed} shape {shape} q {q}: approx {approx} exact {exact} rel {rel}"
                );
            }
            assert_eq!(snap.min, values[0]);
            assert_eq!(snap.max, values[values.len() - 1]);
            assert!(snap.quantile(1.0) <= snap.max + 1e-18);
        }
    }

    #[test]
    fn merge_is_associative_and_matches_recording_everything_once() {
        let mut rng = Rng(42);
        let parts: Vec<Vec<f64>> = (0..3)
            .map(|_| {
                (0..5_000)
                    .map(|_| 1e-7 * (1.0 + rng.f64() * 999.0))
                    .collect()
            })
            .collect();
        let snaps: Vec<HistogramSnapshot> = parts
            .iter()
            .map(|vs| {
                let h = Histogram::new();
                for &v in vs {
                    h.record(v);
                }
                h.snapshot()
            })
            .collect();
        let whole = {
            let h = Histogram::new();
            for vs in &parts {
                for &v in vs {
                    h.record(v);
                }
            }
            h.snapshot()
        };
        let left = snaps[0].merge(&snaps[1]).merge(&snaps[2]);
        let right = snaps[0].merge(&snaps[1].merge(&snaps[2]));
        // Bucket counts, count, and extremes associate exactly.
        assert_eq!(left.buckets, right.buckets);
        assert_eq!(left.count, right.count);
        assert_eq!(left.min, right.min);
        assert_eq!(left.max, right.max);
        assert_eq!(left.buckets, whole.buckets);
        assert_eq!(left.count, whole.count);
        // Quantiles are bucket-derived, hence identical.
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(left.quantile(q), whole.quantile(q));
        }
        // Merging with an empty snapshot is the identity on buckets.
        let empty = HistogramSnapshot::default();
        assert_eq!(whole.merge(&empty).buckets, whole.buckets);
        assert_eq!(empty.merge(&whole).min, whole.min);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64 * 1e-6);
        }
        let snap = h.snapshot();
        let text = snap.to_json().to_string_pretty();
        let back = HistogramSnapshot::from_json(&dmn_json::parse(&text).expect("valid json"))
            .expect("snapshot parses");
        assert_eq!(back, snap);
        // Derived quantiles are present for consumers.
        let doc = dmn_json::parse(&text).unwrap();
        assert!(doc.get("p50").unwrap().as_f64().unwrap() > 0.0);
        assert!(doc.get("p99").unwrap().as_f64().unwrap() > 0.0);
        // Malformed documents are rejected with a field name.
        let err = HistogramSnapshot::from_json(&Json::obj([("count", Json::Num(1.0))]))
            .expect_err("missing fields");
        assert!(err.contains("buckets"), "{err}");
        let err = HistogramSnapshot::from_json(&Json::obj([("buckets", Json::arr([]))]))
            .expect_err("missing numeric fields");
        assert!(err.contains("count"), "{err}");
    }

    #[test]
    fn concurrent_recorders_keep_the_total_count_exact() {
        let h: &'static Histogram = Box::leak(Box::new(Histogram::new()));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    let mut rng = Rng(0x9e37 + t as u64);
                    for _ in 0..100_000 {
                        h.record(1e-8 * (1.0 + rng.f64() * 1e6));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("recorder thread");
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 400_000, "total count is exact");
        assert_eq!(
            snap.buckets.iter().map(|&(_, n)| n).sum::<u64>(),
            400_000,
            "bucket counts account for every record"
        );
        assert!(snap.min > 0.0 && snap.max <= 1e-8 * (1.0 + 1e6));
    }

    #[test]
    fn registry_interns_and_resets_counters_gauges_histograms() {
        let _gate = exclusive();
        let c = counter("test_registry_counter_total");
        let c2 = counter("test_registry_counter_total");
        assert!(std::ptr::eq(c, c2), "same name, same cell");
        c.inc();
        c.add(4);
        let g = gauge("test_registry_gauge");
        g.set(7);
        g.add(-2);
        assert_eq!(g.get(), 5);
        let h = histogram("test_registry_hist_seconds");
        h.record(0.5);
        let before = c.get();
        assert!(before >= 5);
        reset();
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
        assert_eq!(h.snapshot().count, 0);
    }

    #[test]
    fn spans_record_only_when_enabled_but_always_time() {
        let _gate = exclusive();
        set_enabled(false);
        reset();
        let s = span("test.span.disabled");
        std::thread::sleep(std::time::Duration::from_millis(2));
        let secs = s.finish();
        assert!(secs >= 0.002, "spans measure even when disabled: {secs}");
        assert!(spans_snapshot().is_empty(), "disabled spans don't record");

        set_enabled(true);
        let s = span("test.span.enabled");
        let _ = s.finish();
        let recorded = spans_snapshot();
        assert_eq!(recorded.len(), 1);
        assert_eq!(recorded[0].name, "test.span.enabled");
        assert!(recorded[0].duration_seconds >= 0.0);
        let jsonl = spans_jsonl();
        assert!(jsonl.contains("test.span.enabled"), "{jsonl}");
        assert_eq!(jsonl.lines().count(), 1);
        dmn_json::parse(jsonl.lines().next().unwrap()).expect("JSONL lines parse");
        set_enabled(false);
        reset();
    }

    #[test]
    fn span_ring_is_bounded_and_drops_oldest() {
        let _gate = exclusive();
        set_enabled(true);
        reset();
        for _ in 0..SPAN_RING_CAPACITY + 10 {
            span("test.span.flood").finish();
        }
        assert_eq!(spans_snapshot().len(), SPAN_RING_CAPACITY);
        set_enabled(false);
        reset();
    }

    #[test]
    fn exposition_covers_counters_gauges_and_histogram_summaries() {
        let _gate = exclusive();
        reset();
        counter("test_expo_requests_total").add(3);
        fault_fired_total("test.point").add(2);
        gauge("test_expo_depth").set(11);
        let h = histogram("test_expo_seconds");
        for i in 1..=100 {
            h.record(i as f64 * 1e-4);
        }
        let text = prometheus_text();
        assert!(
            text.contains("# TYPE test_expo_requests_total counter"),
            "{text}"
        );
        assert!(text.contains("test_expo_requests_total 3"), "{text}");
        assert!(
            text.contains("dmn_faults_fired_total{point=\"test.point\"} 2"),
            "{text}"
        );
        assert!(text.contains("# TYPE test_expo_depth gauge"), "{text}");
        assert!(text.contains("test_expo_depth 11"), "{text}");
        assert!(text.contains("# TYPE test_expo_seconds summary"), "{text}");
        assert!(
            text.contains("test_expo_seconds{quantile=\"0.99\"}"),
            "{text}"
        );
        assert!(text.contains("test_expo_seconds_count 100"), "{text}");

        let snap = snapshot_json();
        assert_eq!(
            snap.get("counters")
                .unwrap()
                .get("test_expo_requests_total")
                .unwrap()
                .as_f64(),
            Some(3.0)
        );
        assert_eq!(
            snap.get("gauges").unwrap().get("test_expo_depth").unwrap(),
            &Json::Num(11.0)
        );
        let hist = snap
            .get("histograms")
            .unwrap()
            .get("test_expo_seconds")
            .unwrap();
        assert_eq!(hist.get("count").unwrap().as_f64(), Some(100.0));
        assert!(hist.get("p99").unwrap().as_f64().unwrap() > 0.0);
        // The whole snapshot stays valid JSON end to end.
        dmn_json::parse(&snap.to_string_pretty()).expect("snapshot round-trips");
        reset();
    }
}
