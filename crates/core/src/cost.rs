//! Cost evaluation: storage + read + update, under pluggable update
//! policies.
//!
//! The paper's model (Section 1.1) charges
//!
//! * `cs(v)` per copy of an object on node `v`,
//! * `ct(h(r), s(r))` per read request `r` (nearest copy), and
//! * `sum over e in E_Ur of multiplicity(e) * ct(e)` per write request,
//!   where the update set `E_Ur` carries the update from the home to every
//!   copy.
//!
//! The *policy* decides the update set:
//!
//! * [`UpdatePolicy::MstMulticast`] — the paper's achievable strategy
//!   (Section 2): a message from the home to the nearest copy, then one
//!   update along a minimum spanning tree of the copy set in the metric.
//!   Claim 2 bounds this within a factor 2 of the optimal update set.
//! * [`UpdatePolicy::ExactSteiner`] — the information-theoretic optimum:
//!   each write pays a minimum Steiner tree connecting its home with all
//!   copies. Exponential in the copy count; reserved for validation-scale
//!   instances (this is the cost the exact OPT solvers use).
//! * [`UpdatePolicy::UnicastStar`] — a naive baseline that updates every
//!   copy with an individual point-to-point message.

use dmn_graph::mst::metric_mst_weight;
use dmn_graph::steiner::dreyfus_wagner;
use dmn_graph::{Graph, Metric, NodeId};

use crate::instance::{Instance, ObjectWorkload};
use crate::placement::Placement;

/// How write updates are routed to the copies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdatePolicy {
    /// Home → nearest copy, then multicast along the metric MST of the
    /// copy set (the paper's strategy; within 2x of optimal updates).
    MstMulticast,
    /// Per-write minimum Steiner tree over `{home} ∪ copies` — the optimal
    /// update set. Only for small copy sets (exact Steiner is exponential).
    ExactSteiner,
    /// One unicast message from the home to every copy (naive baseline).
    UnicastStar,
}

/// Additive cost decomposition of a placement.
///
/// `write_serve` is the home→nearest-copy leg of writes, which the paper's
/// restricted-cost accounting folds into the read cost; keeping it separate
/// lets experiments report both views.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CostBreakdown {
    /// Sum of `cs(v)` over copies.
    pub storage: f64,
    /// Read requests to their nearest copies.
    pub read: f64,
    /// Write requests' home → nearest copy legs (0 under
    /// [`UpdatePolicy::ExactSteiner`], which charges the whole tree).
    pub write_serve: f64,
    /// Multicast/update traffic distributing writes to all copies.
    pub multicast: f64,
}

impl CostBreakdown {
    /// Total cost.
    pub fn total(&self) -> f64 {
        self.storage + self.read + self.write_serve + self.multicast
    }

    /// Update cost in the paper's sense (everything writes pay).
    pub fn update(&self) -> f64 {
        self.write_serve + self.multicast
    }

    /// Read cost in the *restricted* accounting of Section 2, where the
    /// home→nearest-copy legs of writes count as read cost.
    pub fn restricted_read(&self) -> f64 {
        self.read + self.write_serve
    }

    /// Component-wise sum.
    pub fn add(&self, o: &CostBreakdown) -> CostBreakdown {
        CostBreakdown {
            storage: self.storage + o.storage,
            read: self.read + o.read,
            write_serve: self.write_serve + o.write_serve,
            multicast: self.multicast + o.multicast,
        }
    }
}

/// Evaluates the cost of serving `workload` from `copies` under `policy`.
///
/// # Panics
/// Panics when `copies` is empty (no copy to serve requests) or when
/// [`UpdatePolicy::ExactSteiner`] is used with more than 19 copies.
pub fn evaluate_object(
    metric: &Metric,
    storage_cost: &[f64],
    workload: &ObjectWorkload,
    copies: &[NodeId],
    policy: UpdatePolicy,
) -> CostBreakdown {
    assert!(!copies.is_empty(), "an object needs at least one copy");
    let mut out = CostBreakdown::default();
    for &c in copies {
        out.storage += storage_cost[c];
    }
    let w_total = workload.total_writes();
    // Nearest-copy service for reads, and for the write message legs under
    // the multicast policy.
    for v in 0..workload.num_nodes() {
        let fr = workload.reads[v];
        let fw = workload.writes[v];
        if fr == 0.0 && fw == 0.0 {
            continue;
        }
        let (_, d) = metric.nearest_in(v, copies).expect("copies is non-empty");
        out.read += fr * d;
        match policy {
            UpdatePolicy::MstMulticast => out.write_serve += fw * d,
            UpdatePolicy::ExactSteiner => {
                if fw > 0.0 {
                    let mut terms = Vec::with_capacity(copies.len() + 1);
                    terms.extend_from_slice(copies);
                    terms.push(v);
                    out.multicast += fw * dreyfus_wagner(metric, &terms);
                }
            }
            UpdatePolicy::UnicastStar => {
                if fw > 0.0 {
                    let star: f64 = copies.iter().map(|&c| metric.dist(v, c)).sum();
                    out.multicast += fw * star;
                }
            }
        }
    }
    if policy == UpdatePolicy::MstMulticast && w_total > 0.0 {
        out.multicast += w_total * metric_mst_weight(metric, copies);
    }
    out
}

/// Evaluates one object of an instance.
pub fn evaluate_object_of(
    instance: &Instance,
    placement: &Placement,
    x: usize,
    policy: UpdatePolicy,
) -> CostBreakdown {
    evaluate_object(
        instance.metric(),
        &instance.storage_cost,
        &instance.objects[x],
        placement.copies(x),
        policy,
    )
}

/// Evaluates a whole placement: the sum of per-object costs (the model
/// treats objects independently).
pub fn evaluate(instance: &Instance, placement: &Placement, policy: UpdatePolicy) -> CostBreakdown {
    assert_eq!(placement.num_objects(), instance.num_objects());
    placement
        .validate(instance.num_nodes())
        .expect("placement must be servable");
    (0..instance.num_objects())
        .map(|x| evaluate_object_of(instance, placement, x, policy))
        .fold(CostBreakdown::default(), |acc, c| acc.add(&c))
}

/// Evaluates one object **without any dense closure**: one Dijkstra per
/// copy (`O(|copies| (n + m) log n)`) gives exact distances from every
/// copy, which covers nearest-copy service, the unicast star, and the
/// pairwise copy distances of the MST multicast. This is how the sparse
/// solve path prices 10^4-node placements that a dense `apsp` could not
/// hold in memory.
///
/// Distances are read from the copy's Dijkstra run (`d(c, v)`), so totals
/// can differ from [`evaluate_object`] by floating-point ulps (metric
/// closures are only symmetric up to rounding).
///
/// # Panics
/// Panics when `copies` is empty or `policy` is
/// [`UpdatePolicy::ExactSteiner`] (exact Steiner needs the dense metric).
pub fn evaluate_object_on_graph(
    graph: &Graph,
    storage_cost: &[f64],
    workload: &ObjectWorkload,
    copies: &[NodeId],
    policy: UpdatePolicy,
) -> CostBreakdown {
    assert!(!copies.is_empty(), "an object needs at least one copy");
    assert!(
        policy != UpdatePolicy::ExactSteiner,
        "ExactSteiner evaluation requires the dense metric path"
    );
    let rows: Vec<Vec<f64>> = copies
        .iter()
        .map(|&c| dmn_graph::shortest_paths(graph, c).dist)
        .collect();
    let mut out = CostBreakdown::default();
    for &c in copies {
        out.storage += storage_cost[c];
    }
    for v in 0..workload.num_nodes() {
        let fr = workload.reads[v];
        let fw = workload.writes[v];
        if fr == 0.0 && fw == 0.0 {
            continue;
        }
        let d = rows
            .iter()
            .map(|r| r[v])
            .min_by(|a, b| a.partial_cmp(b).expect("distances are not NaN"))
            .expect("copies is non-empty");
        out.read += fr * d;
        match policy {
            UpdatePolicy::MstMulticast => out.write_serve += fw * d,
            UpdatePolicy::UnicastStar => {
                if fw > 0.0 {
                    let star: f64 = rows.iter().map(|r| r[v]).sum();
                    out.multicast += fw * star;
                }
            }
            UpdatePolicy::ExactSteiner => unreachable!("rejected above"),
        }
    }
    let w_total = workload.total_writes();
    if policy == UpdatePolicy::MstMulticast && w_total > 0.0 {
        // Pairwise copy distances from the per-copy rows → a k×k metric.
        let k = copies.len();
        let mut d = vec![0.0; k * k];
        for i in 0..k {
            for (j, &cj) in copies.iter().enumerate() {
                d[i * k + j] = rows[i][cj];
            }
        }
        let local = Metric::from_matrix(k, d);
        let all: Vec<NodeId> = (0..k).collect();
        out.multicast += w_total * metric_mst_weight(&local, &all);
    }
    out
}

/// Evaluates a whole placement graph-side (see
/// [`evaluate_object_on_graph`]): never touches `instance.metric()`, so a
/// sparse solve stays sub-quadratic end to end.
pub fn evaluate_sparse(
    instance: &Instance,
    placement: &Placement,
    policy: UpdatePolicy,
) -> CostBreakdown {
    assert_eq!(placement.num_objects(), instance.num_objects());
    placement
        .validate(instance.num_nodes())
        .expect("placement must be servable");
    (0..instance.num_objects())
        .map(|x| {
            evaluate_object_on_graph(
                &instance.graph,
                &instance.storage_cost,
                &instance.objects[x],
                placement.copies(x),
                policy,
            )
        })
        .fold(CostBreakdown::default(), |acc, c| acc.add(&c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmn_graph::dijkstra::apsp;
    use dmn_graph::generators;

    /// Path 0-1-2 with unit edges; cs = 5 everywhere.
    fn setup() -> (Metric, Vec<f64>, ObjectWorkload) {
        let g = generators::path(3, |_| 1.0);
        let m = apsp(&g);
        let cs = vec![5.0; 3];
        let mut w = ObjectWorkload::new(3);
        w.reads[0] = 2.0; // 2 reads at node 0
        w.writes[2] = 3.0; // 3 writes at node 2
        (m, cs, w)
    }

    #[test]
    fn single_copy_costs() {
        let (m, cs, w) = setup();
        // Copy only on node 1: reads pay 2*1, writes pay 3*1 to reach the
        // copy; a single copy needs no multicast.
        let c = evaluate_object(&m, &cs, &w, &[1], UpdatePolicy::MstMulticast);
        assert_eq!(c.storage, 5.0);
        assert_eq!(c.read, 2.0);
        assert_eq!(c.write_serve, 3.0);
        assert_eq!(c.multicast, 0.0);
        assert_eq!(c.total(), 10.0);
        assert_eq!(c.restricted_read(), 5.0);
    }

    #[test]
    fn two_copies_mst_multicast() {
        let (m, cs, w) = setup();
        // Copies on 0 and 2: reads/writes are local (distance 0), but every
        // write multicasts over the MST {0,2} of weight 2.
        let c = evaluate_object(&m, &cs, &w, &[0, 2], UpdatePolicy::MstMulticast);
        assert_eq!(c.storage, 10.0);
        assert_eq!(c.read, 0.0);
        assert_eq!(c.write_serve, 0.0);
        assert_eq!(c.multicast, 3.0 * 2.0);
        assert_eq!(c.total(), 16.0);
    }

    #[test]
    fn exact_steiner_per_write() {
        let (m, cs, w) = setup();
        // Copies on 0 and 2; writer sits on a copy: Steiner({2,0,2}) = 2.
        let c = evaluate_object(&m, &cs, &w, &[0, 2], UpdatePolicy::ExactSteiner);
        assert_eq!(c.write_serve, 0.0);
        assert_eq!(c.multicast, 3.0 * 2.0);
        // Writer off-copy: copy on 0 only, writes at 2 pay the 0-2 path.
        let c1 = evaluate_object(&m, &cs, &w, &[0], UpdatePolicy::ExactSteiner);
        assert_eq!(c1.multicast, 3.0 * 2.0);
        assert_eq!(c1.read, 0.0);
    }

    #[test]
    fn unicast_star_is_most_expensive_with_many_copies() {
        let (m, cs, w) = setup();
        let copies = vec![0, 1, 2];
        let mst = evaluate_object(&m, &cs, &w, &copies, UpdatePolicy::MstMulticast);
        let star = evaluate_object(&m, &cs, &w, &copies, UpdatePolicy::UnicastStar);
        // Star from node 2: distances 2 + 1 + 0 = 3 per write vs MST 2.
        assert_eq!(star.multicast, 3.0 * 3.0);
        assert_eq!(mst.multicast, 3.0 * 2.0);
        assert!(star.total() >= mst.total());
    }

    #[test]
    fn steiner_never_exceeds_mst_policy() {
        let g = generators::grid(3, 3, |u, v| ((u + 2 * v) % 3 + 1) as f64);
        let m = apsp(&g);
        let cs = vec![1.0; 9];
        let mut w = ObjectWorkload::new(9);
        w.reads[0] = 1.0;
        w.writes[4] = 2.0;
        w.writes[8] = 1.0;
        for copies in [vec![0], vec![0, 8], vec![1, 3, 7], vec![0, 2, 6, 8]] {
            let e = evaluate_object(&m, &cs, &w, &copies, UpdatePolicy::ExactSteiner);
            let p = evaluate_object(&m, &cs, &w, &copies, UpdatePolicy::MstMulticast);
            assert!(
                e.update() <= p.update() + 1e-9,
                "copies {copies:?}: exact {} > policy {}",
                e.update(),
                p.update()
            );
            // Claim 2: the MST policy is within 2x of optimal updates.
            assert!(p.update() <= 2.0 * e.update() + 1e-9, "copies {copies:?}");
        }
    }

    #[test]
    fn whole_instance_evaluation_sums_objects() {
        let g = generators::path(3, |_| 1.0);
        let mut inst = Instance::builder(g).uniform_storage_cost(5.0).build();
        let mut w1 = ObjectWorkload::new(3);
        w1.reads[0] = 2.0;
        w1.writes[2] = 3.0;
        let w2 = ObjectWorkload::from_sparse(3, [(1, 4.0)], []);
        inst.push_object(w1);
        inst.push_object(w2);
        let p = Placement::from_copy_sets(vec![vec![1], vec![1]]);
        let c = evaluate(&inst, &p, UpdatePolicy::MstMulticast);
        // Object 1: 10 (see single_copy_costs); object 2: storage 5, read 0.
        assert_eq!(c.total(), 15.0);
    }

    #[test]
    #[should_panic(expected = "at least one copy")]
    fn empty_copy_set_panics() {
        let (m, cs, w) = setup();
        evaluate_object(&m, &cs, &w, &[], UpdatePolicy::MstMulticast);
    }

    #[test]
    fn graph_side_evaluation_matches_dense() {
        let g = generators::grid(4, 4, |u, v| 1.0 + ((u + v) % 3) as f64 * 0.5);
        let m = apsp(&g);
        let cs: Vec<f64> = (0..16).map(|v| 2.0 + (v % 4) as f64).collect();
        let mut w = ObjectWorkload::new(16);
        w.reads[1] = 2.0;
        w.reads[14] = 1.5;
        w.writes[7] = 0.75;
        for copies in [vec![0], vec![3, 12], vec![2, 8, 15]] {
            for policy in [UpdatePolicy::MstMulticast, UpdatePolicy::UnicastStar] {
                let dense = evaluate_object(&m, &cs, &w, &copies, policy);
                let sparse = evaluate_object_on_graph(&g, &cs, &w, &copies, policy);
                assert!(
                    (dense.total() - sparse.total()).abs() < 1e-9,
                    "{copies:?} {policy:?}: {} vs {}",
                    dense.total(),
                    sparse.total()
                );
                assert!((dense.storage - sparse.storage).abs() < 1e-12);
                assert!((dense.read - sparse.read).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn evaluate_sparse_sums_whole_instance() {
        let g = generators::path(3, |_| 1.0);
        let mut inst = Instance::builder(g).uniform_storage_cost(5.0).build();
        let mut w1 = ObjectWorkload::new(3);
        w1.reads[0] = 2.0;
        w1.writes[2] = 3.0;
        inst.push_object(w1);
        inst.push_object(ObjectWorkload::from_sparse(3, [(1, 4.0)], []));
        let p = Placement::from_copy_sets(vec![vec![1], vec![1]]);
        let c = evaluate_sparse(&inst, &p, UpdatePolicy::MstMulticast);
        assert_eq!(c.total(), 15.0);
        assert_eq!(inst.metric_build_seconds(), 0.0, "dense closure untouched");
    }

    #[test]
    #[should_panic(expected = "dense metric path")]
    fn graph_side_evaluation_rejects_exact_steiner() {
        let g = generators::path(3, |_| 1.0);
        let mut w = ObjectWorkload::new(3);
        w.reads[0] = 1.0;
        evaluate_object_on_graph(&g, &[1.0; 3], &w, &[0], UpdatePolicy::ExactSteiner);
    }
}
