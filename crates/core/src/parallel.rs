//! Order-preserving parallel map on std scoped threads.
//!
//! The workspace's hot paths (per-object placement, experiment seed
//! sweeps) are embarrassingly parallel; this module gives them one shared,
//! dependency-free work-stealing-ish driver: a bag of indexed items drained
//! by worker threads through an atomic cursor, with results written back
//! into per-item slots so the output order always matches the input order
//! (parallel and sequential runs are byte-identical).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item, in parallel, returning results in input
/// order. Runs sequentially when there is at most one item or one CPU.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_threads(items, None, f)
}

/// [`par_map`] with an explicit worker cap: at most `max_threads` workers
/// (`None` = all available CPUs). `Some(1)` forces sequential execution —
/// the sharded solver uses this so each shard solves on one core while
/// shards themselves run in parallel, making the shard count the unit of
/// parallelism instead of oversubscribing nested thread pools.
pub fn par_map_threads<T, U, F>(items: &[T], max_threads: Option<usize>, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_threads_with(items, max_threads, || (), |(), item| f(item))
}

/// [`par_map_threads`] with per-worker state: every worker thread calls
/// `init` exactly once and threads the resulting value mutably through all
/// items it processes. This is how hot paths reuse scratch buffers —
/// e.g. one facility-location workspace per worker across all objects —
/// instead of allocating per item. The sequential path (one thread or one
/// item) creates a single state for the whole slice.
pub fn par_map_threads_with<T, U, S, I, F>(
    items: &[T],
    max_threads: Option<usize>,
    init: I,
    f: F,
) -> Vec<U>
where
    T: Sync,
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> U + Sync,
{
    let available = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let threads = max_threads
        .unwrap_or(available)
        .max(1)
        .min(available)
        .min(items.len());
    if threads <= 1 {
        let mut state = init();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }
    let slots: Vec<Mutex<Option<U>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let out = f(&mut state, &items[i]);
                    *slots[i].lock().expect("no poisoned slot") = Some(out);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("unpoisoned")
                .expect("every slot filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = par_map(&items, |&x| x * x);
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        assert!(par_map(&[] as &[u32], |&x| x).is_empty());
        assert_eq!(par_map(&[5], |&x| x + 1), vec![6]);
    }

    #[test]
    fn thread_cap_is_respected_and_order_preserved() {
        let items: Vec<usize> = (0..50).collect();
        let expected: Vec<usize> = items.iter().map(|&x| x + 7).collect();
        for cap in [Some(1), Some(2), Some(3), Some(usize::MAX), None] {
            assert_eq!(par_map_threads(&items, cap, |&x| x + 7), expected);
        }
    }

    #[test]
    fn per_worker_state_is_reused_and_order_preserved() {
        let items: Vec<usize> = (0..64).collect();
        for cap in [Some(1), Some(3), None] {
            // Each worker's scratch buffer grows monotonically: reuse is
            // observable through the capacity surviving across items.
            let out = par_map_threads_with(
                &items,
                cap,
                Vec::<usize>::new,
                |scratch: &mut Vec<usize>, &x| {
                    scratch.push(x);
                    x * 2 + usize::from(scratch.is_empty())
                },
            );
            assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn sequential_path_uses_one_state() {
        let items = [1usize, 2, 3, 4];
        let out = par_map_threads_with(
            &items,
            Some(1),
            || 0usize,
            |seen: &mut usize, &x| {
                *seen += 1;
                (*seen, x)
            },
        );
        // One state for the whole slice: the counter runs 1..=4.
        assert_eq!(out, vec![(1, 1), (2, 2), (3, 3), (4, 4)]);
    }

    #[test]
    fn matches_sequential_for_heavy_items() {
        let items: Vec<u64> = (0..16).collect();
        let f = |&s: &u64| -> u64 {
            let mut acc = s;
            for i in 0..(s % 5) * 50_000 {
                acc = acc.wrapping_mul(31).wrapping_add(i);
            }
            acc
        };
        assert_eq!(par_map(&items, f), items.iter().map(f).collect::<Vec<_>>());
    }
}
