//! The SPAA 2001 constant-factor approximation algorithm for static data
//! management on arbitrary networks (Section 2 of the paper).
//!
//! Per object, the algorithm runs three phases:
//!
//! 1. **Facility location** on the *related* instance (writes counted as
//!    reads, update cost neglected);
//! 2. **Radius add** — while some node `v` is farther than `5·rs(v)` from
//!    its nearest copy, store a copy at `v` (Claim 10 shows this never
//!    increases read + storage cost);
//! 3. **Radius prune** — scan copy holders in ascending write radius
//!    `rw(v)` and delete any other copy `u` with `ct(u, v) ≤ 4·rw(u)`.
//!
//! Lemma 8 proves the result is a *proper placement* with constants
//! `k1 = 29`, `k2 = 2`; together with Theorem 3 and Lemma 9 this gives a
//! constant total-cost approximation (Theorem 7). The [`proper`] module
//! verifies the Lemma-8 invariants on concrete outputs.

pub mod algorithm;
pub mod baselines;
pub mod capacity;
pub mod proper;
pub mod sparse_path;

pub use algorithm::{
    place_all, place_object, place_object_in, place_object_instrumented, place_object_traced,
    place_object_warm_in, ApproxConfig, FlSolverKind, PhaseTimings, PhaseTrace,
};
pub use capacity::{enforce_capacities, respects_capacities, CapacityError};
pub use proper::{check_proper, ProperReport};
pub use sparse_path::{place_object_sparse, place_object_sparse_in, SparseOpts, SparseOutcome};
