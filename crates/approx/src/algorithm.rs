//! The three-phase approximation algorithm (Section 2.2).

use dmn_core::instance::{Instance, ObjectWorkload};
use dmn_core::parallel::par_map_threads_with;
use dmn_core::placement::Placement;
use dmn_core::radii::RadiusTable;
use dmn_core::telemetry;
use dmn_facility::{FlInstance, FlWorkspace, LocalSearchConfig, SearchStats, Solver};
use dmn_graph::{Metric, NodeId};

/// Which UFL solver backs phase 1. Theorem 7's constant depends on the
/// solver's factor `f` only through Lemma 9, so all of these are valid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlSolverKind {
    /// Incremental add/drop/swap local search (default; 5 + ε).
    #[default]
    LocalSearch,
    /// Incremental local search warm-started from Mettu–Plaxton (5 + ε;
    /// far fewer moves than the cold start in practice).
    LocalSearchWarm,
    /// The original from-scratch local search (the seed implementation) —
    /// same results as [`FlSolverKind::LocalSearch`], kept for equivalence
    /// pinning and perf baselines.
    LocalSearchRef,
    /// Aggregated-gain local search (Whitaker): one pass per candidate add
    /// prices every swap against it — `O(|open|)` cheaper per iteration
    /// than [`FlSolverKind::LocalSearch`], same move set, trajectory not
    /// bit-pinned to the reference. The sparse solve path's default.
    LocalSearchAgg,
    /// Mettu–Plaxton radius greedy (3; fastest at scale).
    MettuPlaxton,
    /// Jain–Vazirani primal–dual (3).
    JainVazirani,
    /// Density greedy (log-factor worst case, strong in practice).
    Greedy,
    /// Exact brute force (tiny instances; turns phase 1 optimal).
    Exact,
}

impl FlSolverKind {
    /// Every kind, in presentation order.
    pub const ALL: [FlSolverKind; 8] = [
        FlSolverKind::LocalSearch,
        FlSolverKind::LocalSearchWarm,
        FlSolverKind::LocalSearchRef,
        FlSolverKind::LocalSearchAgg,
        FlSolverKind::MettuPlaxton,
        FlSolverKind::JainVazirani,
        FlSolverKind::Greedy,
        FlSolverKind::Exact,
    ];

    /// Stable kebab-case name (CLI / artifact value).
    pub fn name(self) -> &'static str {
        match self {
            FlSolverKind::LocalSearch => "local-search",
            FlSolverKind::LocalSearchWarm => "local-search-warm",
            FlSolverKind::LocalSearchRef => "local-search-ref",
            FlSolverKind::LocalSearchAgg => "local-search-agg",
            FlSolverKind::MettuPlaxton => "mettu-plaxton",
            FlSolverKind::JainVazirani => "jain-vazirani",
            FlSolverKind::Greedy => "greedy",
            FlSolverKind::Exact => "exact",
        }
    }

    /// Parses a kebab-case kind name.
    pub fn parse(name: &str) -> Option<FlSolverKind> {
        FlSolverKind::ALL.into_iter().find(|k| k.name() == name)
    }

    pub(crate) fn as_solver(self) -> Solver {
        match self {
            FlSolverKind::LocalSearch => Solver::LocalSearch,
            FlSolverKind::LocalSearchWarm => Solver::LocalSearchWarm,
            FlSolverKind::LocalSearchRef => Solver::LocalSearchRef,
            FlSolverKind::LocalSearchAgg => Solver::LocalSearchAgg,
            FlSolverKind::MettuPlaxton => Solver::MettuPlaxton,
            FlSolverKind::JainVazirani => Solver::JainVazirani,
            FlSolverKind::Greedy => Solver::Greedy,
            FlSolverKind::Exact => Solver::Exact,
        }
    }
}

/// Configuration of the approximation algorithm.
///
/// The defaults are the paper's constants; they are exposed for the
/// ablation experiments (changing them voids the Lemma-8 guarantee).
#[derive(Debug, Clone)]
pub struct ApproxConfig {
    /// Phase-1 facility location solver.
    pub fl_solver: FlSolverKind,
    /// Phase-2 threshold: add a copy at `v` when the nearest copy is
    /// farther than `storage_add_factor * rs(v)`. Paper value: 5.
    pub storage_add_factor: f64,
    /// Phase-3 threshold: delete a copy at `u` when a surviving copy `v`
    /// satisfies `ct(u, v) <= write_prune_factor * rw(u)`. Paper value: 4.
    pub write_prune_factor: f64,
    /// Skip phase 2 (ablation).
    pub skip_phase2: bool,
    /// Skip phase 3 (ablation).
    pub skip_phase3: bool,
}

impl Default for ApproxConfig {
    fn default() -> Self {
        ApproxConfig {
            fl_solver: FlSolverKind::default(),
            storage_add_factor: 5.0,
            write_prune_factor: 4.0,
            skip_phase2: false,
            skip_phase3: false,
        }
    }
}

/// Copy sets after each phase, for the phase-ablation experiment (E8).
#[derive(Debug, Clone)]
pub struct PhaseTrace {
    /// Copies after phase 1 (facility location).
    pub after_phase1: Vec<NodeId>,
    /// Copies after phase 2 (radius add).
    pub after_phase2: Vec<NodeId>,
    /// Copies after phase 3 (radius prune) — the final placement.
    pub after_phase3: Vec<NodeId>,
}

/// Per-phase wall-clock seconds (and phase-1 work counters) of one
/// [`place_object`] run.
///
/// The radius-table construction is attributed to phase 2 (it exists for
/// the radius phases).
///
/// Since the telemetry layer landed, these fields are shims over the one
/// span source: each phase is timed by a [`dmn_core::telemetry`] span
/// (`solve.facility`, `solve.radius-add`, `solve.radius-prune`), whose
/// returned elapsed seconds fill the fields below. `SolveReport` phase
/// stats sum the same values, so the report and the span ring can never
/// disagree about where solve time went.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTimings {
    /// Phase 1: facility location on the related instance.
    pub facility: f64,
    /// Phase 2: radius computation + radius-driven copy addition.
    pub radius_add: f64,
    /// Phase 3: radius-driven pruning.
    pub radius_prune: f64,
    /// Phase-1 local-search moves accepted (0 for non-local-search
    /// backends).
    pub fl_moves: usize,
    /// Phase-1 local-search candidate moves priced (0 for
    /// non-local-search backends).
    pub fl_candidates: usize,
}

impl PhaseTimings {
    /// Component-wise sum.
    pub fn add(&self, o: &PhaseTimings) -> PhaseTimings {
        PhaseTimings {
            facility: self.facility + o.facility,
            radius_add: self.radius_add + o.radius_add,
            radius_prune: self.radius_prune + o.radius_prune,
            fl_moves: self.fl_moves + o.fl_moves,
            fl_candidates: self.fl_candidates + o.fl_candidates,
        }
    }
}

/// Places one object; returns the final copy set.
///
/// # Panics
/// Panics when the workload has no requests or every node has infinite
/// storage cost.
pub fn place_object(
    metric: &Metric,
    storage_cost: &[f64],
    workload: &ObjectWorkload,
    cfg: &ApproxConfig,
) -> Vec<NodeId> {
    place_object_traced(metric, storage_cost, workload, cfg).after_phase3
}

/// Places one object keeping the per-phase copy sets.
pub fn place_object_traced(
    metric: &Metric,
    storage_cost: &[f64],
    workload: &ObjectWorkload,
    cfg: &ApproxConfig,
) -> PhaseTrace {
    place_object_instrumented(metric, storage_cost, workload, cfg).0
}

/// Places one object keeping per-phase copy sets *and* wall-clock timings
/// (the instrumentation behind `SolveReport` phase breakdowns).
pub fn place_object_instrumented(
    metric: &Metric,
    storage_cost: &[f64],
    workload: &ObjectWorkload,
    cfg: &ApproxConfig,
) -> (PhaseTrace, PhaseTimings) {
    place_object_in(&mut FlWorkspace::new(), metric, storage_cost, workload, cfg)
}

/// [`place_object_instrumented`] on a caller-provided facility-location
/// workspace. Hot paths ([`place_all`], the registry engines, the sharded
/// backend's per-shard workers) hold one workspace per worker thread and
/// reuse its assignment tables and scratch buffers across all objects;
/// together with the borrow-based [`FlInstance`], per-object phase-1
/// setup is then allocation-free.
pub fn place_object_in(
    ws: &mut FlWorkspace,
    metric: &Metric,
    storage_cost: &[f64],
    workload: &ObjectWorkload,
    cfg: &ApproxConfig,
) -> (PhaseTrace, PhaseTimings) {
    place_object_core(ws, metric, storage_cost, workload, cfg, None)
}

/// [`place_object_in`] with a warm phase-1 seed: the local search starts
/// from `warm` (typically the object's copy set from the previous time
/// slot) instead of the best single facility, so a placement that is still
/// near-optimal converges in a handful of moves.
///
/// The seed is sanitized before use — out-of-range and forbidden
/// (infinite-storage) nodes are dropped, and an empty surviving seed falls
/// back to the cold start — so a stale warm set (nodes gone, storage costs
/// changed between slots) degrades gracefully instead of panicking.
/// Non-local-search phase-1 backends have no seedable state and run cold.
/// Phases 2 and 3 are identical to the cold path, so the Lemma-8
/// guarantee is untouched (only the phase-1 *trajectory* changes).
pub fn place_object_warm_in(
    ws: &mut FlWorkspace,
    metric: &Metric,
    storage_cost: &[f64],
    workload: &ObjectWorkload,
    cfg: &ApproxConfig,
    warm: &[NodeId],
) -> (PhaseTrace, PhaseTimings) {
    place_object_core(ws, metric, storage_cost, workload, cfg, Some(warm))
}

fn place_object_core(
    ws: &mut FlWorkspace,
    metric: &Metric,
    storage_cost: &[f64],
    workload: &ObjectWorkload,
    cfg: &ApproxConfig,
    warm: Option<&[NodeId]>,
) -> (PhaseTrace, PhaseTimings) {
    let mut timings = PhaseTimings::default();
    let span = telemetry::span(telemetry::spans::SOLVE_FACILITY);
    workload.validate().expect("invalid workload");
    let n = metric.len();
    let masses = workload.request_masses();
    let w_total = workload.total_writes();

    // A warm seed must satisfy the local-search preconditions (in range,
    // no forbidden sites, non-empty); anything else means the seed is
    // stale and the cold start is the honest fallback.
    let seed: Option<Vec<NodeId>> = warm.and_then(|set| {
        let mut ok: Vec<NodeId> = set
            .iter()
            .copied()
            .filter(|&v| v < n && storage_cost[v].is_finite())
            .collect();
        ok.sort_unstable();
        ok.dedup();
        if ok.is_empty() {
            None
        } else {
            Some(ok)
        }
    });

    // Phase 1: facility location on the related problem (writes as reads).
    // Costs and demands are borrowed, not cloned, into the instance.
    let fl = FlInstance::new(metric, storage_cost, &masses[..]);
    let ls_cfg = LocalSearchConfig::default();
    let (sol, fl_stats) = match (cfg.fl_solver, &seed) {
        (
            FlSolverKind::LocalSearch
            | FlSolverKind::LocalSearchWarm
            | FlSolverKind::LocalSearchRef,
            Some(seed),
        ) => {
            let s = ws.local_search_from(&fl, seed, &ls_cfg);
            (s, ws.last_stats())
        }
        (FlSolverKind::LocalSearchAgg, Some(seed)) => {
            let s = ws.local_search_aggregated_from(&fl, seed, &ls_cfg);
            (s, ws.last_stats())
        }
        (FlSolverKind::LocalSearch, None) => {
            let s = ws.local_search(&fl, &ls_cfg);
            (s, ws.last_stats())
        }
        (FlSolverKind::LocalSearchWarm, None) => {
            let s = dmn_facility::local_search_warm_in(ws, &fl, &ls_cfg);
            (s, ws.last_stats())
        }
        (FlSolverKind::LocalSearchAgg, None) => {
            let s = ws.local_search_aggregated(&fl, &ls_cfg);
            (s, ws.last_stats())
        }
        (other, _) => (other.as_solver().solve(&fl), SearchStats::default()),
    };
    drop(fl);
    let after_phase1 = sol.open.clone();
    let mut copies = sol.open;
    debug_assert!(!copies.is_empty());
    timings.facility = span.finish();
    timings.fl_moves = fl_stats.moves;
    timings.fl_candidates = fl_stats.candidates;
    let span = telemetry::span(telemetry::spans::SOLVE_RADIUS_ADD);

    // Radii (Section 2.1) — fixed for phases 2 and 3.
    let radii = RadiusTable::compute(metric, &masses, w_total, storage_cost);

    // Phase 2: while a node is farther than 5·rs(v) from every copy, store
    // a copy at v. (Order does not matter for the guarantee; we scan
    // round-robin until stable.)
    if !cfg.skip_phase2 {
        loop {
            let mut added = false;
            for v in 0..n {
                // One search serves both the membership test and the
                // insertion point (copies is untouched in between).
                let pos = match copies.binary_search(&v) {
                    Ok(_) => continue,
                    Err(pos) => pos,
                };
                let rs = radii.storage_radius[v];
                if !rs.is_finite() {
                    continue; // storage at v can never pay off
                }
                let (_, d) = metric.nearest_in(v, &copies).expect("non-empty");
                if d > cfg.storage_add_factor * rs {
                    copies.insert(pos, v);
                    added = true;
                }
            }
            if !added {
                break;
            }
        }
    }
    let after_phase2 = copies.clone();
    timings.radius_add = span.finish();
    let span = telemetry::span(telemetry::spans::SOLVE_RADIUS_PRUNE);

    // Phase 3: scan copy holders in ascending write radius; the current
    // node keeps its copy and deletes every other copy u with
    // ct(u, v) <= 4·rw(u).
    if !cfg.skip_phase3 && w_total > 0.0 {
        let mut order: Vec<NodeId> = copies.clone();
        order.sort_by(|&a, &b| {
            radii.write_radius[a]
                .partial_cmp(&radii.write_radius[b])
                .expect("radii are not NaN")
                .then(a.cmp(&b))
        });
        let mut alive: Vec<bool> = vec![true; order.len()];
        for (i, &v) in order.iter().enumerate() {
            if !alive[i] {
                continue;
            }
            for (k, &u) in order.iter().enumerate() {
                if k != i && alive[k] {
                    let ru = radii.write_radius[u];
                    if metric.dist(u, v) <= cfg.write_prune_factor * ru {
                        alive[k] = false;
                    }
                }
            }
        }
        copies = order
            .iter()
            .enumerate()
            .filter(|&(k, _)| alive[k])
            .map(|(_, &v)| v)
            .collect();
        copies.sort_unstable();
    }
    assert!(
        !copies.is_empty(),
        "pruning never deletes the scanned survivor"
    );
    timings.radius_prune = span.finish();

    (
        PhaseTrace {
            after_phase1,
            after_phase2,
            after_phase3: copies,
        },
        timings,
    )
}

/// Places every object of an instance (objects are independent, so they are
/// placed in parallel; each worker thread reuses one facility-location
/// workspace across all objects it processes).
pub fn place_all(instance: &Instance, cfg: &ApproxConfig) -> Placement {
    let metric = instance.metric();
    let sets: Vec<Vec<NodeId>> =
        par_map_threads_with(&instance.objects, None, FlWorkspace::new, |ws, w| {
            place_object_in(ws, metric, &instance.storage_cost, w, cfg)
                .0
                .after_phase3
        });
    Placement::from_copy_sets(sets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmn_core::cost::{evaluate_object, UpdatePolicy};
    use dmn_graph::dijkstra::apsp;
    use dmn_graph::generators;

    fn uniform_reads(n: usize) -> ObjectWorkload {
        let mut w = ObjectWorkload::new(n);
        for v in 0..n {
            w.reads[v] = 1.0;
        }
        w
    }

    #[test]
    fn free_storage_replicates_widely() {
        let g = generators::path(6, |_| 1.0);
        let m = apsp(&g);
        let w = uniform_reads(6);
        let copies = place_object(&m, &[0.0; 6], &w, &ApproxConfig::default());
        // Free storage + read-only: a copy at every requesting node is
        // optimal and phase 2 enforces it.
        assert_eq!(copies, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn expensive_storage_collapses_to_few_copies() {
        let g = generators::path(8, |_| 1.0);
        let m = apsp(&g);
        let w = uniform_reads(8);
        let copies = place_object(&m, &[1000.0; 8], &w, &ApproxConfig::default());
        assert!(copies.len() <= 2, "copies: {copies:?}");
    }

    #[test]
    fn heavy_writes_prune_replicas() {
        let g = generators::path(8, |_| 1.0);
        let m = apsp(&g);
        let mut w = uniform_reads(8);
        w.writes[0] = 100.0; // massive write traffic
        let cheap = place_object(&m, &[0.5; 8], &w, &ApproxConfig::default());
        // With pruning disabled, cheap storage would replicate; writes must
        // shrink the copy set.
        let no_prune = place_object(
            &m,
            &[0.5; 8],
            &w,
            &ApproxConfig {
                skip_phase3: true,
                ..ApproxConfig::default()
            },
        );
        assert!(cheap.len() <= no_prune.len(), "{cheap:?} vs {no_prune:?}");
        assert!(cheap.len() <= 2, "heavy writes: {cheap:?}");
    }

    #[test]
    fn phases_trace_is_consistent() {
        let g = generators::grid(3, 3, |_, _| 1.0);
        let m = apsp(&g);
        let mut w = uniform_reads(9);
        w.writes[4] = 3.0;
        let tr = place_object_traced(&m, &[2.0; 9], &w, &ApproxConfig::default());
        assert!(!tr.after_phase1.is_empty());
        // Phase 2 only adds.
        for c in &tr.after_phase1 {
            assert!(tr.after_phase2.contains(c));
        }
        // Phase 3 only deletes.
        for c in &tr.after_phase3 {
            assert!(tr.after_phase2.contains(c));
        }
    }

    #[test]
    fn respects_forbidden_nodes() {
        let g = generators::path(4, |_| 1.0);
        let m = apsp(&g);
        let w = uniform_reads(4);
        let mut cs = vec![1.0; 4];
        cs[1] = f64::INFINITY;
        cs[2] = f64::INFINITY;
        let copies = place_object(&m, &cs, &w, &ApproxConfig::default());
        assert!(!copies.contains(&1) && !copies.contains(&2), "{copies:?}");
    }

    #[test]
    fn place_all_handles_multiple_objects() {
        let g = generators::grid(3, 3, |_, _| 1.0);
        let mut inst = Instance::builder(g).uniform_storage_cost(3.0).build();
        inst.push_object(uniform_reads(9));
        let mut w2 = ObjectWorkload::new(9);
        w2.writes[0] = 5.0;
        w2.reads[8] = 1.0;
        inst.push_object(w2);
        let p = place_all(&inst, &ApproxConfig::default());
        assert_eq!(p.num_objects(), 2);
        p.validate(9).unwrap();
        let c0 = evaluate_object(
            inst.metric(),
            &inst.storage_cost,
            &inst.objects[0],
            p.copies(0),
            UpdatePolicy::MstMulticast,
        );
        assert!(c0.total().is_finite());
    }

    #[test]
    fn warm_seed_is_sanitized_and_falls_back_cold() {
        let g = generators::grid(3, 3, |_, _| 1.0);
        let m = apsp(&g);
        let mut w = uniform_reads(9);
        w.writes[4] = 2.0;
        let mut cs = vec![2.0; 9];
        cs[3] = f64::INFINITY;
        let cfg = ApproxConfig::default();
        let cold = place_object(&m, &cs, &w, &cfg);

        // A seed full of garbage (forbidden node, out-of-range node,
        // duplicates) must survive: the sanitized remainder seeds the
        // search, and the result is still a valid copy set.
        let mut ws = FlWorkspace::new();
        let (tr, _) = place_object_warm_in(&mut ws, &m, &cs, &w, &cfg, &[3, 42, 0, 0, 8]);
        assert!(!tr.after_phase3.is_empty());
        assert!(tr.after_phase3.iter().all(|&v| v < 9 && cs[v].is_finite()));

        // An entirely-unusable seed falls back to the cold start exactly.
        let (tr, _) = place_object_warm_in(&mut ws, &m, &cs, &w, &cfg, &[3, 42]);
        assert_eq!(tr.after_phase3, cold);
        let (tr, _) = place_object_warm_in(&mut ws, &m, &cs, &w, &cfg, &[]);
        assert_eq!(tr.after_phase3, cold);
    }

    #[test]
    fn warm_seed_from_own_output_is_stable() {
        let g = generators::grid(3, 4, |u, v| ((u + v) % 3 + 1) as f64);
        let m = apsp(&g);
        let mut w = uniform_reads(12);
        w.writes[7] = 2.5;
        let cfg = ApproxConfig::default();
        let cold = place_object(&m, &[4.0; 12], &w, &cfg);
        // Re-solving seeded from the converged answer stays converged (the
        // seed is already a local optimum of phase 1's neighborhood plus
        // the deterministic radius phases).
        let mut ws = FlWorkspace::new();
        let (tr, t) = place_object_warm_in(&mut ws, &m, &[4.0; 12], &w, &cfg, &cold);
        assert!(!tr.after_phase3.is_empty());
        assert!(t.facility >= 0.0);
    }

    #[test]
    fn warm_seed_ignored_by_non_local_search_backends() {
        let g = generators::path(6, |_| 1.0);
        let m = apsp(&g);
        let w = uniform_reads(6);
        let cfg = ApproxConfig {
            fl_solver: FlSolverKind::MettuPlaxton,
            ..ApproxConfig::default()
        };
        let cold = place_object(&m, &[1.0; 6], &w, &cfg);
        let mut ws = FlWorkspace::new();
        let (tr, _) = place_object_warm_in(&mut ws, &m, &[1.0; 6], &w, &cfg, &[5]);
        assert_eq!(tr.after_phase3, cold, "non-seedable backend runs cold");
    }

    #[test]
    fn deterministic_given_same_input() {
        let g = generators::grid(3, 4, |u, v| ((u + v) % 3 + 1) as f64);
        let m = apsp(&g);
        let mut w = uniform_reads(12);
        w.writes[7] = 2.5;
        let a = place_object(&m, &[4.0; 12], &w, &ApproxConfig::default());
        let b = place_object(&m, &[4.0; 12], &w, &ApproxConfig::default());
        assert_eq!(a, b);
    }
}
