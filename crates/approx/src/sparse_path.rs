//! The sparse per-object solve path: the three-phase algorithm on a
//! truncated metric closure instead of the dense n×n matrix.
//!
//! Per object, the only nodes that matter are its clients (positive request
//! mass) and the candidate facility sites near them. The sparse path
//!
//! 1. collects the clients and grows a candidate ball around them
//!    ([`dmn_graph::ball_candidates`], sized by [`SparseOpts::expansion`]),
//! 2. builds the **exact** metric closure restricted to that set
//!    ([`dmn_graph::truncated_closure`] — one early-stopped Dijkstra per
//!    candidate, cached for the whole object), and
//! 3. runs the unchanged three-phase pipeline on the restricted instance,
//!    with phase 2's radius scan answered by an incremental
//!    [`NearestCopyOracle`] instead of per-query copy-set scans,
//!
//! then maps the copy set back to global node ids. When the candidate set
//! covers every node (e.g. every node is a client, or `expansion` is
//! large), the restricted closure is bit-identical to the dense `apsp`
//! rows and the whole trajectory — facility location, radii, both radius
//! phases — reproduces the dense path exactly; with a truncated set the
//! result may differ because facilities outside the ball are not
//! considered, which the E16 experiment and the perf-smoke `scale_ok`
//! gate bound in cost.

use dmn_core::instance::ObjectWorkload;
use dmn_core::radii::RadiusTable;
use dmn_core::telemetry;
use dmn_facility::{FlInstance, FlWorkspace, LocalSearchConfig, NearestCopyOracle, SearchStats};
use dmn_graph::{ball_candidates, truncated_closure, Graph, NodeId};

use crate::algorithm::{ApproxConfig, FlSolverKind, PhaseTimings, PhaseTrace};

/// Knobs of the sparse solve path.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseOpts {
    /// Candidate-ball size as a multiple of the client count: the per-object
    /// facility candidate set has `max(min_candidates, ceil(expansion *
    /// |clients|))` nodes (clamped to the graph). Larger = closer to the
    /// dense path, slower.
    pub expansion: f64,
    /// Floor on the candidate-set size (keeps tiny objects from degenerate
    /// one-node balls).
    pub min_candidates: usize,
    /// Bucketing factor of the phase-2 nearest-copy oracle
    /// (`0` = exact distances; see [`NearestCopyOracle`]).
    pub oracle_eps: f64,
}

impl Default for SparseOpts {
    fn default() -> Self {
        SparseOpts {
            expansion: 3.0,
            min_candidates: 16,
            oracle_eps: 0.0,
        }
    }
}

/// Result of one sparse per-object placement.
#[derive(Debug, Clone)]
pub struct SparseOutcome {
    /// Per-phase copy sets in **global** node ids.
    pub trace: PhaseTrace,
    /// Per-phase timings (facility / radius-add / radius-prune).
    pub timings: PhaseTimings,
    /// Seconds spent building the truncated metric closure.
    pub metric_seconds: f64,
    /// Size of the candidate set the object was solved over.
    pub candidates: usize,
}

/// Places one object through the sparse path (fresh workspace).
pub fn place_object_sparse(
    graph: &Graph,
    storage_cost: &[f64],
    workload: &ObjectWorkload,
    cfg: &ApproxConfig,
    opts: &SparseOpts,
) -> SparseOutcome {
    place_object_sparse_in(
        &mut FlWorkspace::new(),
        graph,
        storage_cost,
        workload,
        cfg,
        opts,
    )
}

/// [`place_object_sparse`] on a caller-provided facility-location
/// workspace (one per worker thread on the hot path).
///
/// # Panics
/// Panics when the workload has no requests or every node has infinite
/// storage cost.
pub fn place_object_sparse_in(
    ws: &mut FlWorkspace,
    graph: &Graph,
    storage_cost: &[f64],
    workload: &ObjectWorkload,
    cfg: &ApproxConfig,
    opts: &SparseOpts,
) -> SparseOutcome {
    let span = telemetry::span(telemetry::spans::SOLVE_METRIC_BUILD);
    workload.validate().expect("invalid workload");
    let n = graph.num_nodes();
    assert_eq!(storage_cost.len(), n);

    // Candidate set: clients plus the ball around them.
    let clients: Vec<NodeId> = (0..n).filter(|&v| workload.request_mass(v) > 0.0).collect();
    assert!(!clients.is_empty(), "workload has no requests");
    let target = ((clients.len() as f64 * opts.expansion).ceil() as usize)
        .max(opts.min_candidates)
        .min(n);
    let mut cand = ball_candidates(graph, &clients, target);
    if !cand.iter().any(|&v| storage_cost[v].is_finite()) {
        // Correctness fallback for pathological cost maps: every allowed
        // site sits outside the ball, so pull them all in.
        cand.extend((0..n).filter(|&v| storage_cost[v].is_finite()));
        cand.sort_unstable();
        cand.dedup();
    }
    let metric = truncated_closure(graph, &cand);
    let metric_seconds = span.finish();
    let k = cand.len();

    // Restricted instance: local index i ↔ global node cand[i]; every
    // client is inside the ball, so no request mass is lost.
    let cs: Vec<f64> = cand.iter().map(|&v| storage_cost[v]).collect();
    let masses: Vec<f64> = cand.iter().map(|&v| workload.request_mass(v)).collect();
    let w_total = workload.total_writes();

    let mut timings = PhaseTimings::default();
    let span = telemetry::span(telemetry::spans::SOLVE_FACILITY);

    // Phase 1: facility location on the restricted related instance.
    let fl = FlInstance::new(&metric, &cs[..], &masses[..]);
    let ls_cfg = LocalSearchConfig::default();
    let (sol, fl_stats) = match cfg.fl_solver {
        FlSolverKind::LocalSearch => {
            let s = ws.local_search(&fl, &ls_cfg);
            (s, ws.last_stats())
        }
        FlSolverKind::LocalSearchWarm => {
            let s = dmn_facility::local_search_warm_in(ws, &fl, &ls_cfg);
            (s, ws.last_stats())
        }
        FlSolverKind::LocalSearchAgg => {
            let s = ws.local_search_aggregated(&fl, &ls_cfg);
            (s, ws.last_stats())
        }
        other => (other.as_solver().solve(&fl), SearchStats::default()),
    };
    drop(fl);
    let after_phase1 = sol.open.clone();
    let mut copies = sol.open;
    debug_assert!(!copies.is_empty());
    timings.facility = span.finish();
    timings.fl_moves = fl_stats.moves;
    timings.fl_candidates = fl_stats.candidates;
    let span = telemetry::span(telemetry::spans::SOLVE_RADIUS_ADD);

    // Radii over the restricted metric: every positive-mass node is in the
    // candidate set, so the distance profiles are exact.
    let radii = RadiusTable::compute(&metric, &masses, w_total, &cs);

    // Phase 2 with the incremental nearest-copy oracle (O(1) per query,
    // O(k) per accepted add). With `oracle_eps = 0` the compared distance
    // equals the dense path's `nearest_in` value exactly.
    if !cfg.skip_phase2 {
        let mut oracle = NearestCopyOracle::new(k, opts.oracle_eps);
        oracle.reset(&metric, &copies);
        loop {
            let mut added = false;
            for v in 0..k {
                let pos = match copies.binary_search(&v) {
                    Ok(_) => continue,
                    Err(pos) => pos,
                };
                let rs = radii.storage_radius[v];
                if !rs.is_finite() {
                    continue;
                }
                if oracle.nearest_dist(v) > cfg.storage_add_factor * rs {
                    copies.insert(pos, v);
                    oracle.add_copy(&metric, v);
                    added = true;
                }
            }
            if !added {
                break;
            }
        }
    }
    let after_phase2 = copies.clone();
    timings.radius_add = span.finish();
    let span = telemetry::span(telemetry::spans::SOLVE_RADIUS_PRUNE);

    // Phase 3: identical to the dense path, on the restricted metric.
    if !cfg.skip_phase3 && w_total > 0.0 {
        let mut order: Vec<NodeId> = copies.clone();
        order.sort_by(|&a, &b| {
            radii.write_radius[a]
                .partial_cmp(&radii.write_radius[b])
                .expect("radii are not NaN")
                .then(a.cmp(&b))
        });
        let mut alive: Vec<bool> = vec![true; order.len()];
        for (i, &v) in order.iter().enumerate() {
            if !alive[i] {
                continue;
            }
            for (j, &u) in order.iter().enumerate() {
                if j != i && alive[j] {
                    let ru = radii.write_radius[u];
                    if metric.dist(u, v) <= cfg.write_prune_factor * ru {
                        alive[j] = false;
                    }
                }
            }
        }
        copies = order
            .iter()
            .enumerate()
            .filter(|&(j, _)| alive[j])
            .map(|(_, &v)| v)
            .collect();
        copies.sort_unstable();
    }
    assert!(
        !copies.is_empty(),
        "pruning never deletes the scanned survivor"
    );
    timings.radius_prune = span.finish();

    // Back to global ids; `cand` is ascending, so sorted stays sorted.
    let lift = |local: Vec<NodeId>| -> Vec<NodeId> { local.into_iter().map(|i| cand[i]).collect() };
    SparseOutcome {
        trace: PhaseTrace {
            after_phase1: lift(after_phase1),
            after_phase2: lift(after_phase2),
            after_phase3: lift(copies),
        },
        timings,
        metric_seconds,
        candidates: k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::place_object_traced;
    use dmn_graph::{apsp, generators};

    fn uniform_reads(n: usize) -> ObjectWorkload {
        let mut w = ObjectWorkload::new(n);
        for v in 0..n {
            w.reads[v] = 1.0 + (v % 3) as f64;
        }
        w
    }

    #[test]
    fn full_coverage_reproduces_dense_path_exactly() {
        // Every node is a client → the candidate set is the whole graph →
        // the truncated closure equals apsp bit for bit → identical phases.
        let g = generators::kary_tree(14, 2, |e| 1.0 + (e % 4) as f64 * 0.5);
        let m = apsp(&g);
        let mut w = uniform_reads(14);
        w.writes[3] = 2.0;
        let cs = vec![4.0; 14];
        let cfg = ApproxConfig::default();
        let dense = place_object_traced(&m, &cs, &w, &cfg);
        let sparse = place_object_sparse(&g, &cs, &w, &cfg, &SparseOpts::default());
        assert_eq!(sparse.candidates, 14);
        assert_eq!(sparse.trace.after_phase1, dense.after_phase1);
        assert_eq!(sparse.trace.after_phase2, dense.after_phase2);
        assert_eq!(sparse.trace.after_phase3, dense.after_phase3);
    }

    #[test]
    fn large_expansion_reproduces_dense_on_partial_clients() {
        let g = generators::grid(5, 6, |u, v| 1.0 + ((u * v) % 3) as f64);
        let m = apsp(&g);
        let mut w = ObjectWorkload::new(30);
        w.reads[2] = 3.0;
        w.reads[17] = 1.0;
        w.writes[25] = 0.5;
        let cs = vec![3.0; 30];
        let cfg = ApproxConfig::default();
        let opts = SparseOpts {
            expansion: 1e9,
            ..SparseOpts::default()
        };
        let dense = place_object_traced(&m, &cs, &w, &cfg);
        let sparse = place_object_sparse(&g, &cs, &w, &cfg, &opts);
        assert_eq!(sparse.candidates, 30, "expansion covers the graph");
        assert_eq!(sparse.trace.after_phase3, dense.after_phase3);
    }

    #[test]
    fn truncated_ball_stays_valid_and_local() {
        let g = generators::grid(8, 8, |_, _| 1.0);
        let mut w = ObjectWorkload::new(64);
        w.reads[0] = 5.0;
        w.reads[9] = 2.0; // clients in one corner
        let cs = vec![2.0; 64];
        let out = place_object_sparse(
            &g,
            &cs,
            &w,
            &ApproxConfig::default(),
            &SparseOpts::default(),
        );
        assert!(out.candidates < 64, "ball must truncate");
        assert!(!out.trace.after_phase3.is_empty());
        assert!(out.trace.after_phase3.iter().all(|&v| v < 64));
        assert!(
            out.trace.after_phase3.windows(2).all(|p| p[0] < p[1]),
            "sorted global ids"
        );
    }

    #[test]
    fn pulls_in_allowed_sites_when_ball_has_none() {
        // Storage is only allowed far from the clients: the fallback must
        // extend the candidate set instead of panicking.
        let g = generators::path(20, |_| 1.0);
        let mut w = ObjectWorkload::new(20);
        w.reads[0] = 1.0;
        w.reads[1] = 1.0;
        let mut cs = vec![f64::INFINITY; 20];
        cs[19] = 1.0;
        let opts = SparseOpts {
            expansion: 1.0,
            min_candidates: 2,
            oracle_eps: 0.0,
        };
        let out = place_object_sparse(&g, &cs, &w, &ApproxConfig::default(), &opts);
        assert_eq!(out.trace.after_phase3, vec![19]);
    }

    #[test]
    fn bucketed_oracle_keeps_costs_sane() {
        let g = generators::grid(6, 6, |u, v| 1.0 + ((u + v) % 2) as f64);
        let w = uniform_reads(36);
        let cs = vec![5.0; 36];
        let exact = place_object_sparse(
            &g,
            &cs,
            &w,
            &ApproxConfig::default(),
            &SparseOpts::default(),
        );
        let bucketed = place_object_sparse(
            &g,
            &cs,
            &w,
            &ApproxConfig::default(),
            &SparseOpts {
                oracle_eps: 0.1,
                ..SparseOpts::default()
            },
        );
        // Bucketing rounds distances up → thresholds trip no later than
        // exact mode; copy sets stay non-empty and valid either way.
        assert!(!bucketed.trace.after_phase3.is_empty());
        assert!(bucketed.trace.after_phase2.len() >= exact.trace.after_phase2.len());
    }
}
