//! Memory capacity constraints (related-work extension).
//!
//! The paper's model has unbounded memory modules; the capacitated variant
//! — each node may hold at most `cap(v)` copies across all objects — is
//! studied by Baev & Rajaraman and Meyer auf der Heide et al. (the paper's
//! references 3, 11, 12). This module provides a repair step: given
//! any placement (e.g. from the unconstrained algorithm), it resolves
//! over-full nodes greedily by moving or dropping the copy whose repair is
//! cheapest, never leaving an object copyless.
//!
//! This is a heuristic (the capacitated problem has no constant-factor
//! combinatorial algorithm in this style); experiments should report the
//! before/after cost so the capacity penalty is visible.

use dmn_core::cost::{evaluate_object, UpdatePolicy};
use dmn_core::instance::Instance;
use dmn_core::placement::Placement;
use dmn_graph::NodeId;

/// Error cases of [`enforce_capacities`].
#[derive(Debug, Clone, PartialEq)]
pub enum CapacityError {
    /// Total usable capacity (on nodes allowed to hold copies) cannot
    /// hold one copy per object.
    Infeasible {
        /// Sum of capacities over finite-storage nodes.
        total_capacity: usize,
        /// Number of objects needing at least one copy.
        objects: usize,
    },
}

/// Makes `placement` respect per-node copy capacities, greedily minimizing
/// the total-cost increase (MST-multicast policy). Returns the repaired
/// placement.
///
/// Strategy: while some node is over capacity, consider for each of its
/// copies (a) dropping it (if the object keeps another copy) and (b)
/// moving it to any node with free capacity; apply the cheapest repair.
/// When neither exists for the over-full node (its copies are all last
/// copies and every other node is full), the repair falls back to the
/// cheapest *global* drop of any redundant copy — that frees a slot
/// elsewhere and, since usable capacity suffices, guarantees progress.
///
/// # Errors
/// [`CapacityError::Infeasible`] when the capacity summed over nodes that
/// may hold copies (finite storage cost) is below the object count.
pub fn enforce_capacities(
    instance: &Instance,
    placement: &Placement,
    cap: &[usize],
) -> Result<Placement, CapacityError> {
    let n = instance.num_nodes();
    assert_eq!(cap.len(), n, "capacity vector length mismatch");
    let objects = instance.num_objects();
    let total: usize = (0..n)
        .filter(|&v| instance.storage_cost[v].is_finite())
        .map(|v| cap[v])
        .sum();
    if total < objects {
        return Err(CapacityError::Infeasible {
            total_capacity: total,
            objects,
        });
    }
    let metric = instance.metric();
    let mut out = placement.clone();

    // Current load per node.
    let mut load = vec![0usize; n];
    for x in 0..objects {
        for &v in out.copies(x) {
            load[v] += 1;
        }
    }

    let cost_of = |x: usize, copies: &[NodeId]| -> f64 {
        evaluate_object(
            metric,
            &instance.storage_cost,
            &instance.objects[x],
            copies,
            UpdatePolicy::MstMulticast,
        )
        .total()
    };

    loop {
        let Some(over) = (0..n).find(|&v| load[v] > cap[v]) else {
            return Ok(out);
        };
        // Cheapest repair among all copies on the over-full node.
        let mut best: Option<(f64, usize, Option<NodeId>)> = None; // (delta, object, target)
        for x in 0..objects {
            if !out.has_copy(x, over) {
                continue;
            }
            let current = out.copies(x).to_vec();
            let base = cost_of(x, &current);
            let without: Vec<NodeId> = current.iter().copied().filter(|&v| v != over).collect();
            // (a) drop.
            if !without.is_empty() {
                let delta = cost_of(x, &without) - base;
                if best.as_ref().is_none_or(|b| delta < b.0) {
                    best = Some((delta, x, None));
                }
            }
            // (b) move to a node with slack (and no copy of x yet).
            for u in 0..n {
                if u != over
                    && load[u] < cap[u]
                    && instance.storage_cost[u].is_finite()
                    && !out.has_copy(x, u)
                {
                    let mut moved = without.clone();
                    let pos = moved.binary_search(&u).unwrap_err();
                    moved.insert(pos, u);
                    let delta = cost_of(x, &moved) - base;
                    if best.as_ref().is_none_or(|b| delta < b.0) {
                        best = Some((delta, x, Some(u)));
                    }
                }
            }
        }
        let Some((_, x, target)) = best else {
            // Stuck: every copy on the over-full node is its object's last
            // copy and no node has slack. Usable capacity >= objects means
            // some object still owns a redundant copy somewhere — drop the
            // globally cheapest one and retry (the freed slot unblocks a
            // move on a later iteration).
            let mut fallback: Option<(f64, usize, NodeId)> = None; // (delta, object, node)
            for x in 0..objects {
                let current = out.copies(x);
                if current.len() < 2 {
                    continue;
                }
                let current = current.to_vec();
                let base = cost_of(x, &current);
                for &v in &current {
                    let without: Vec<NodeId> =
                        current.iter().copied().filter(|&u| u != v).collect();
                    let delta = cost_of(x, &without) - base;
                    if fallback.as_ref().is_none_or(|f| delta < f.0) {
                        fallback = Some((delta, x, v));
                    }
                }
            }
            let (_, x, v) = fallback
                .expect("a redundant copy exists whenever usable capacity covers the objects");
            out.remove_copy(x, v);
            load[v] -= 1;
            continue;
        };
        out.remove_copy(x, over);
        load[over] -= 1;
        if let Some(u) = target {
            out.add_copy(x, u);
            load[u] += 1;
        }
    }
}

/// True when `placement` respects the capacities.
pub fn respects_capacities(placement: &Placement, cap: &[usize]) -> bool {
    let mut load = vec![0usize; cap.len()];
    for x in 0..placement.num_objects() {
        for &v in placement.copies(x) {
            load[v] += 1;
        }
    }
    load.iter().zip(cap).all(|(l, c)| l <= c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{place_all, ApproxConfig};
    use dmn_core::instance::ObjectWorkload;
    use dmn_graph::generators;

    fn instance_with_objects(k: usize) -> Instance {
        let g = generators::path(4, |_| 1.0);
        let mut inst = Instance::builder(g).uniform_storage_cost(0.1).build();
        for i in 0..k {
            let mut w = ObjectWorkload::new(4);
            w.reads[i % 4] = 3.0;
            w.reads[(i + 1) % 4] = 1.0;
            inst.push_object(w);
        }
        inst
    }

    #[test]
    fn already_feasible_is_untouched() {
        let inst = instance_with_objects(2);
        let p = Placement::from_copy_sets(vec![vec![0], vec![1]]);
        let out = enforce_capacities(&inst, &p, &[1, 1, 1, 1]).unwrap();
        assert_eq!(out, p);
    }

    #[test]
    fn overloaded_node_is_relieved() {
        let inst = instance_with_objects(3);
        // Everything piled on node 0, capacity 1 there.
        let p = Placement::from_copy_sets(vec![vec![0], vec![0], vec![0]]);
        let out = enforce_capacities(&inst, &p, &[1, 2, 2, 2]).unwrap();
        assert!(respects_capacities(&out, &[1, 2, 2, 2]));
        out.validate(4).unwrap();
    }

    #[test]
    fn drops_redundant_copies_before_moving_when_cheaper() {
        let inst = instance_with_objects(1);
        // Object has copies everywhere; node 0 over capacity 0.
        let p = Placement::from_copy_sets(vec![vec![0, 1, 2, 3]]);
        let out = enforce_capacities(&inst, &p, &[0, 1, 1, 1]).unwrap();
        assert!(!out.has_copy(0, 0));
        assert!(respects_capacities(&out, &[0, 1, 1, 1]));
    }

    #[test]
    fn infeasible_capacity_reported() {
        let inst = instance_with_objects(3);
        let p = Placement::from_copy_sets(vec![vec![0], vec![1], vec![2]]);
        let err = enforce_capacities(&inst, &p, &[1, 1, 0, 0]).unwrap_err();
        assert_eq!(
            err,
            CapacityError::Infeasible {
                total_capacity: 2,
                objects: 3
            }
        );
    }

    #[test]
    fn pipeline_with_algorithm_output() {
        let g = generators::grid(3, 3, |_, _| 1.0);
        let mut inst = Instance::builder(g).uniform_storage_cost(0.5).build();
        for i in 0..4 {
            let mut w = ObjectWorkload::new(9);
            for v in 0..9 {
                w.reads[v] = ((v + i) % 3) as f64;
            }
            w.writes[i] = 1.0;
            inst.push_object(w);
        }
        let p = place_all(&inst, &ApproxConfig::default());
        let cap = vec![1usize; 9];
        let out = enforce_capacities(&inst, &p, &cap).unwrap();
        assert!(respects_capacities(&out, &cap));
        out.validate(9).unwrap();
        // Capacity can only cost us: the repaired placement is valid but
        // possibly pricier.
        let before = dmn_core::cost::evaluate(&inst, &p, UpdatePolicy::MstMulticast).total();
        let after = dmn_core::cost::evaluate(&inst, &out, UpdatePolicy::MstMulticast).total();
        assert!(after.is_finite() && after > 0.0);
        let _ = before;
    }
}
