//! Properness verification (Section 2.1 / Lemma 8).
//!
//! A placement is *proper* when
//!
//! 1. every node `v` has a copy within `k1 · max(rw(v), rs(v))`, and
//! 2. any two copy holders `u`, `v` are at least
//!    `2·k2 · max(rw(u), rw(v))` apart.
//!
//! Lemma 8 shows the algorithm's output satisfies these with `k1 = 29` and
//! `k2 = 2` (i.e. pairwise separation `4 · max(rw(u), rw(v))`). Because the
//! whole approximation guarantee (Theorem 3) rests on properness, the test
//! suite and experiment E3 verify it on every produced placement.

use dmn_core::radii::RadiusTable;
use dmn_graph::{Metric, NodeId};

/// Paper constant `k1` established by Lemma 8.
pub const K1: f64 = 29.0;
/// Paper constant `k2` established by Lemma 8.
pub const K2: f64 = 2.0;

/// A violation of one of the two properness conditions.
#[derive(Debug, Clone, PartialEq)]
pub enum ProperViolation {
    /// Node `v` has no copy within `k1 · max(rw, rs)`.
    TooFarFromCopy {
        /// The under-served node.
        v: NodeId,
        /// Distance to its nearest copy.
        nearest: f64,
        /// The allowed radius `k1 · max(rw(v), rs(v))`.
        allowed: f64,
    },
    /// Copy holders `u` and `v` are closer than `2·k2·max(rw(u), rw(v))`.
    CopiesTooClose {
        /// First copy holder.
        u: NodeId,
        /// Second copy holder.
        v: NodeId,
        /// Their distance.
        dist: f64,
        /// The required separation.
        required: f64,
    },
}

/// Outcome of a properness check.
#[derive(Debug, Clone)]
pub struct ProperReport {
    /// All violations found (empty = proper).
    pub violations: Vec<ProperViolation>,
}

impl ProperReport {
    /// True when no condition is violated.
    pub fn is_proper(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Checks the two properness conditions with constants `k1`, `k2`.
///
/// Nodes whose radii are infinite (storage can never pay off near them)
/// impose no proximity requirement, mirroring the paper's radius
/// definitions.
pub fn check_proper(
    metric: &Metric,
    radii: &RadiusTable,
    copies: &[NodeId],
    k1: f64,
    k2: f64,
) -> ProperReport {
    let mut violations = Vec::new();
    let n = metric.len();
    for v in 0..n {
        let allowed = k1 * radii.max_radius(v);
        if !allowed.is_finite() {
            continue;
        }
        let (_, nearest) = metric.nearest_in(v, copies).expect("non-empty copies");
        if nearest > allowed + 1e-9 {
            violations.push(ProperViolation::TooFarFromCopy {
                v,
                nearest,
                allowed,
            });
        }
    }
    for (i, &u) in copies.iter().enumerate() {
        for &v in &copies[i + 1..] {
            let required = 2.0 * k2 * radii.write_radius[u].max(radii.write_radius[v]);
            let dist = metric.dist(u, v);
            if dist + 1e-9 < required {
                violations.push(ProperViolation::CopiesTooClose {
                    u,
                    v,
                    dist,
                    required,
                });
            }
        }
    }
    ProperReport { violations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{place_object, ApproxConfig};
    use dmn_core::instance::ObjectWorkload;
    use dmn_core::radii::RadiusTable;
    use dmn_graph::dijkstra::apsp;
    use dmn_graph::generators;

    fn radii_for(metric: &Metric, w: &ObjectWorkload, cs: &[f64]) -> RadiusTable {
        RadiusTable::compute(metric, &w.request_masses(), w.total_writes(), cs)
    }

    #[test]
    fn algorithm_output_is_proper_on_grids() {
        let g = generators::grid(4, 4, |_, _| 1.0);
        let m = apsp(&g);
        for (cs_scale, write_mass) in [(0.5, 0.0), (2.0, 1.0), (8.0, 10.0), (50.0, 3.0)] {
            let mut w = ObjectWorkload::new(16);
            for v in 0..16 {
                w.reads[v] = 1.0;
            }
            w.writes[5] = write_mass;
            let cs = vec![cs_scale; 16];
            let copies = place_object(&m, &cs, &w, &ApproxConfig::default());
            let radii = radii_for(&m, &w, &cs);
            let report = check_proper(&m, &radii, &copies, K1, K2);
            assert!(
                report.is_proper(),
                "cs={cs_scale} wm={write_mass}: {:?}",
                report.violations
            );
        }
    }

    #[test]
    fn detects_far_node_violation() {
        let m = Metric::from_line(&[0.0, 1.0, 100.0]);
        let mut w = ObjectWorkload::new(3);
        w.reads[0] = 1.0;
        w.reads[2] = 1.0;
        w.writes[2] = 1.0;
        let cs = vec![0.1; 3];
        let radii = radii_for(&m, &w, &cs);
        // Copy only at node 0: node 2 sits 100 away with tiny radii.
        let report = check_proper(&m, &radii, &[0], K1, K2);
        assert!(!report.is_proper());
        assert!(matches!(
            report.violations[0],
            ProperViolation::TooFarFromCopy { v: 2, .. }
        ));
    }

    #[test]
    fn detects_close_copies_violation() {
        let m = Metric::from_line(&[0.0, 1.0, 50.0]);
        let mut w = ObjectWorkload::new(3);
        // All write mass far away: rw of nodes 0/1 is large.
        w.writes[2] = 4.0;
        w.reads[0] = 0.5;
        let cs = vec![1.0; 3];
        let radii = radii_for(&m, &w, &cs);
        let report = check_proper(&m, &radii, &[0, 1], K1, K2);
        assert!(report
            .violations
            .iter()
            .any(|x| matches!(x, ProperViolation::CopiesTooClose { .. })));
    }

    #[test]
    fn infinite_radius_nodes_are_exempt() {
        let m = Metric::from_line(&[0.0, 1000.0]);
        let mut w = ObjectWorkload::new(2);
        w.reads[0] = 1.0; // node 1 has no requests near it
        let cs = vec![1e12; 2]; // storage never pays off
        let radii = radii_for(&m, &w, &cs);
        assert!(radii.storage_radius[1].is_infinite());
        let report = check_proper(&m, &radii, &[0], K1, K2);
        assert!(report.is_proper());
    }
}
