//! Baseline placement strategies the experiments compare against.
//!
//! None of these carries the paper's guarantee; they bracket the algorithm
//! from below (trivial strategies) and above (direct local search on the
//! true objective, a strong but guarantee-free heuristic).

use dmn_core::cost::{evaluate_object, UpdatePolicy};
use dmn_core::instance::ObjectWorkload;
use dmn_graph::{Metric, NodeId};
use rand::Rng;

/// A copy on every node that is allowed to hold one (finite storage cost).
pub fn full_replication(storage_cost: &[f64]) -> Vec<NodeId> {
    (0..storage_cost.len())
        .filter(|&v| storage_cost[v].is_finite())
        .collect()
}

/// The single node minimizing the true total cost (exact 1-copy optimum,
/// a weighted 1-median including write traffic).
pub fn best_single_node(
    metric: &Metric,
    storage_cost: &[f64],
    workload: &ObjectWorkload,
) -> Vec<NodeId> {
    let best = (0..metric.len())
        .filter(|&v| storage_cost[v].is_finite())
        .min_by(|&a, &b| {
            let ca = evaluate_object(metric, storage_cost, workload, &[a], UpdatePolicy::MstMulticast)
                .total();
            let cb = evaluate_object(metric, storage_cost, workload, &[b], UpdatePolicy::MstMulticast)
                .total();
            ca.partial_cmp(&cb).expect("costs are not NaN")
        })
        .expect("at least one allowed node");
    vec![best]
}

/// `k` distinct random allowed nodes (baseline for "how much does placement
/// intelligence matter at equal replication degree").
pub fn random_k(storage_cost: &[f64], k: usize, rng: &mut impl Rng) -> Vec<NodeId> {
    let allowed: Vec<NodeId> = (0..storage_cost.len())
        .filter(|&v| storage_cost[v].is_finite())
        .collect();
    assert!(!allowed.is_empty());
    let k = k.clamp(1, allowed.len());
    let mut picked = Vec::with_capacity(k);
    let mut pool = allowed;
    for _ in 0..k {
        let i = rng.random_range(0..pool.len());
        picked.push(pool.swap_remove(i));
    }
    picked.sort_unstable();
    picked
}

/// Add/drop/swap local search directly on the true data-management
/// objective (including MST-multicast update cost). No approximation
/// guarantee — the update cost is not submodular in the copy set — but a
/// strong practical upper-bound reference.
pub fn greedy_local(
    metric: &Metric,
    storage_cost: &[f64],
    workload: &ObjectWorkload,
) -> Vec<NodeId> {
    let n = metric.len();
    let allowed: Vec<NodeId> = (0..n).filter(|&v| storage_cost[v].is_finite()).collect();
    let cost_of = |set: &[NodeId]| -> f64 {
        evaluate_object(metric, storage_cost, workload, set, UpdatePolicy::MstMulticast).total()
    };
    let mut current = best_single_node(metric, storage_cost, workload);
    let mut cost = cost_of(&current);
    loop {
        let mut best: Option<(Vec<NodeId>, f64)> = None;
        let consider = |cand: Vec<NodeId>, best: &mut Option<(Vec<NodeId>, f64)>| {
            let c = cost_of(&cand);
            if c + 1e-9 < cost && best.as_ref().is_none_or(|(_, bc)| c < *bc) {
                *best = Some((cand, c));
            }
        };
        for &v in &allowed {
            if current.binary_search(&v).is_err() {
                let mut cand = current.clone();
                let pos = cand.binary_search(&v).unwrap_err();
                cand.insert(pos, v);
                consider(cand, &mut best);
            }
        }
        if current.len() > 1 {
            for i in 0..current.len() {
                let mut cand = current.clone();
                cand.remove(i);
                consider(cand, &mut best);
            }
        }
        for i in 0..current.len() {
            for &v in &allowed {
                if current.binary_search(&v).is_err() {
                    let mut cand = current.clone();
                    cand[i] = v;
                    cand.sort_unstable();
                    consider(cand, &mut best);
                }
            }
        }
        match best {
            Some((cand, c)) => {
                current = cand;
                cost = c;
            }
            None => break,
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn line_workload() -> (Metric, Vec<f64>, ObjectWorkload) {
        let m = Metric::from_line(&[0.0, 1.0, 2.0, 10.0, 11.0]);
        let cs = vec![2.0; 5];
        let mut w = ObjectWorkload::new(5);
        for v in 0..5 {
            w.reads[v] = 1.0;
        }
        (m, cs, w)
    }

    #[test]
    fn full_replication_skips_forbidden() {
        let mut cs = vec![1.0; 4];
        cs[2] = f64::INFINITY;
        assert_eq!(full_replication(&cs), vec![0, 1, 3]);
    }

    #[test]
    fn best_single_is_a_median() {
        let (m, cs, w) = line_workload();
        let b = best_single_node(&m, &cs, &w);
        // Node 2 minimizes total read distance on this line.
        assert_eq!(b, vec![2]);
    }

    #[test]
    fn random_k_is_deterministic_per_seed() {
        let cs = vec![1.0; 10];
        let mut r1 = ChaCha8Rng::seed_from_u64(1);
        let mut r2 = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(random_k(&cs, 3, &mut r1), random_k(&cs, 3, &mut r2));
        let picked = random_k(&cs, 100, &mut r1);
        assert_eq!(picked.len(), 10, "k clamps to the allowed count");
    }

    #[test]
    fn greedy_local_improves_on_single_copy_for_read_heavy() {
        let (m, cs, w) = line_workload();
        let single = best_single_node(&m, &cs, &w);
        let local = greedy_local(&m, &cs, &w);
        let c_single =
            evaluate_object(&m, &cs, &w, &single, UpdatePolicy::MstMulticast).total();
        let c_local = evaluate_object(&m, &cs, &w, &local, UpdatePolicy::MstMulticast).total();
        assert!(c_local <= c_single + 1e-9);
        // Two clusters -> two copies is strictly better here.
        assert!(local.len() >= 2, "local: {local:?}");
    }

    #[test]
    fn greedy_local_keeps_single_copy_under_heavy_writes() {
        let m = Metric::from_line(&[0.0, 1.0, 2.0]);
        let cs = vec![0.5; 3];
        let mut w = ObjectWorkload::new(3);
        w.reads[0] = 1.0;
        w.reads[2] = 1.0;
        w.writes[1] = 50.0;
        let local = greedy_local(&m, &cs, &w);
        assert_eq!(local.len(), 1, "heavy writes forbid replication: {local:?}");
    }
}
