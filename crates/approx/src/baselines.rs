//! Baseline placement strategies the experiments compare against.
//!
//! None of these carries the paper's guarantee; they bracket the algorithm
//! from below (trivial strategies) and above (direct local search on the
//! true objective, a strong but guarantee-free heuristic).
//!
//! All baselines consume a whole [`Instance`] and produce a [`Placement`]
//! covering every object — the same surface the [`dmn-solve`] `Solver`
//! trait expects — and the non-trivial ones evaluate candidates under the
//! true objective (storage + read + MST-multicast update cost), so
//! transmission costs are never silently ignored.

use dmn_core::cost::{evaluate_object, UpdatePolicy};
use dmn_core::instance::{Instance, ObjectWorkload};
use dmn_core::placement::Placement;
use dmn_graph::{Metric, NodeId};
use rand::Rng;

/// A copy of every object on every node that is allowed to hold one
/// (finite storage cost).
pub fn full_replication(instance: &Instance) -> Placement {
    let all: Vec<NodeId> = allowed_nodes(&instance.storage_cost);
    assert!(!all.is_empty(), "no node may hold a copy");
    Placement::from_copy_sets(vec![all; instance.num_objects()])
}

/// Per object, the single node minimizing the true total cost (exact
/// 1-copy optimum, a weighted 1-median including write traffic).
pub fn best_single_node(instance: &Instance) -> Placement {
    per_object(instance, best_single_object)
}

/// Per object, `k` distinct random allowed nodes (baseline for "how much
/// does placement intelligence matter at equal replication degree").
pub fn random_k(instance: &Instance, k: usize, rng: &mut impl Rng) -> Placement {
    let sets = instance
        .objects
        .iter()
        .map(|_| random_k_object(&instance.storage_cost, k, rng))
        .collect();
    Placement::from_copy_sets(sets)
}

/// Per object, add/drop/swap local search directly on the true
/// data-management objective (including MST-multicast update cost). No
/// approximation guarantee — the update cost is not submodular in the copy
/// set — but a strong practical upper-bound reference.
pub fn greedy_local(instance: &Instance) -> Placement {
    per_object(instance, greedy_local_object)
}

fn per_object(
    instance: &Instance,
    f: impl Fn(&Metric, &[f64], &ObjectWorkload) -> Vec<NodeId>,
) -> Placement {
    let metric = instance.metric();
    let sets = instance
        .objects
        .iter()
        .map(|w| f(metric, &instance.storage_cost, w))
        .collect();
    Placement::from_copy_sets(sets)
}

fn allowed_nodes(storage_cost: &[f64]) -> Vec<NodeId> {
    (0..storage_cost.len())
        .filter(|&v| storage_cost[v].is_finite())
        .collect()
}

/// Single-object kernel of [`full_replication`].
pub fn full_replication_object(storage_cost: &[f64]) -> Vec<NodeId> {
    allowed_nodes(storage_cost)
}

/// Single-object kernel of [`best_single_node`].
pub fn best_single_object(
    metric: &Metric,
    storage_cost: &[f64],
    workload: &ObjectWorkload,
) -> Vec<NodeId> {
    let best = (0..metric.len())
        .filter(|&v| storage_cost[v].is_finite())
        .min_by(|&a, &b| {
            let ca = evaluate_object(
                metric,
                storage_cost,
                workload,
                &[a],
                UpdatePolicy::MstMulticast,
            )
            .total();
            let cb = evaluate_object(
                metric,
                storage_cost,
                workload,
                &[b],
                UpdatePolicy::MstMulticast,
            )
            .total();
            ca.partial_cmp(&cb).expect("costs are not NaN")
        })
        .expect("at least one allowed node");
    vec![best]
}

/// Single-object kernel of [`random_k`].
pub fn random_k_object(storage_cost: &[f64], k: usize, rng: &mut impl Rng) -> Vec<NodeId> {
    let allowed = allowed_nodes(storage_cost);
    assert!(!allowed.is_empty());
    let k = k.clamp(1, allowed.len());
    let mut picked = Vec::with_capacity(k);
    let mut pool = allowed;
    for _ in 0..k {
        let i = rng.random_range(0..pool.len());
        picked.push(pool.swap_remove(i));
    }
    picked.sort_unstable();
    picked
}

/// Single-object kernel of [`greedy_local`].
pub fn greedy_local_object(
    metric: &Metric,
    storage_cost: &[f64],
    workload: &ObjectWorkload,
) -> Vec<NodeId> {
    let allowed = allowed_nodes(storage_cost);
    let cost_of = |set: &[NodeId]| -> f64 {
        evaluate_object(
            metric,
            storage_cost,
            workload,
            set,
            UpdatePolicy::MstMulticast,
        )
        .total()
    };
    let mut current = best_single_object(metric, storage_cost, workload);
    let mut cost = cost_of(&current);
    loop {
        let mut best: Option<(Vec<NodeId>, f64)> = None;
        let consider = |cand: Vec<NodeId>, best: &mut Option<(Vec<NodeId>, f64)>| {
            let c = cost_of(&cand);
            if c + 1e-9 < cost && best.as_ref().is_none_or(|(_, bc)| c < *bc) {
                *best = Some((cand, c));
            }
        };
        for &v in &allowed {
            if current.binary_search(&v).is_err() {
                let mut cand = current.clone();
                let pos = cand.binary_search(&v).unwrap_err();
                cand.insert(pos, v);
                consider(cand, &mut best);
            }
        }
        if current.len() > 1 {
            for i in 0..current.len() {
                let mut cand = current.clone();
                cand.remove(i);
                consider(cand, &mut best);
            }
        }
        for i in 0..current.len() {
            for &v in &allowed {
                if current.binary_search(&v).is_err() {
                    let mut cand = current.clone();
                    cand[i] = v;
                    cand.sort_unstable();
                    consider(cand, &mut best);
                }
            }
        }
        match best {
            Some((cand, c)) => {
                current = cand;
                cost = c;
            }
            None => break,
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmn_graph::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn line_instance() -> Instance {
        // Two read clusters separated by a long gap.
        let positions = [0.0, 1.0, 2.0, 10.0, 11.0];
        let g = generators::path(5, |i| positions[i + 1] - positions[i]);
        let mut inst = Instance::builder(g).uniform_storage_cost(2.0).build();
        let mut w = ObjectWorkload::new(5);
        for v in 0..5 {
            w.reads[v] = 1.0;
        }
        inst.push_object(w);
        inst
    }

    #[test]
    fn full_replication_skips_forbidden() {
        let g = generators::path(4, |_| 1.0);
        let mut cs = vec![1.0; 4];
        cs[2] = f64::INFINITY;
        let mut inst = Instance::builder(g).storage_costs(cs).build();
        inst.push_object(ObjectWorkload::from_sparse(4, [(0, 1.0)], []));
        inst.push_object(ObjectWorkload::from_sparse(4, [(3, 1.0)], []));
        let p = full_replication(&inst);
        assert_eq!(p.num_objects(), 2);
        for x in 0..2 {
            assert_eq!(p.copies(x), &[0, 1, 3]);
        }
    }

    #[test]
    fn best_single_is_a_median() {
        let inst = line_instance();
        let p = best_single_node(&inst);
        // Node 2 minimizes total read distance on this line.
        assert_eq!(p.copies(0), &[2]);
    }

    #[test]
    fn random_k_is_deterministic_per_seed() {
        let g = generators::path(10, |_| 1.0);
        let mut inst = Instance::builder(g).uniform_storage_cost(1.0).build();
        inst.push_object(ObjectWorkload::from_sparse(10, [(0, 1.0)], []));
        let mut r1 = ChaCha8Rng::seed_from_u64(1);
        let mut r2 = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(random_k(&inst, 3, &mut r1), random_k(&inst, 3, &mut r2));
        let p = random_k(&inst, 100, &mut r1);
        assert_eq!(p.copies(0).len(), 10, "k clamps to the allowed count");
    }

    #[test]
    fn greedy_local_improves_on_single_copy_for_read_heavy() {
        let inst = line_instance();
        let single = best_single_node(&inst);
        let local = greedy_local(&inst);
        let cost =
            |p: &Placement| dmn_core::cost::evaluate(&inst, p, UpdatePolicy::MstMulticast).total();
        assert!(cost(&local) <= cost(&single) + 1e-9);
        // Two clusters -> two copies is strictly better here.
        assert!(local.copies(0).len() >= 2, "local: {:?}", local.copies(0));
    }

    #[test]
    fn greedy_local_keeps_single_copy_under_heavy_writes() {
        let g = generators::path(3, |_| 1.0);
        let mut inst = Instance::builder(g).uniform_storage_cost(0.5).build();
        let mut w = ObjectWorkload::new(3);
        w.reads[0] = 1.0;
        w.reads[2] = 1.0;
        w.writes[1] = 50.0;
        inst.push_object(w);
        let local = greedy_local(&inst);
        assert_eq!(local.copies(0).len(), 1, "heavy writes forbid replication");
    }
}
