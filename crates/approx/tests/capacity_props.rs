//! Seeded property tests for the greedy capacity repair.
//!
//! The contract pinned here, across randomized instances, placements, and
//! capacity vectors:
//!
//! 1. whenever the usable capacity covers the object count, the repair
//!    succeeds and its output `respects_capacities` and stays servable;
//! 2. infeasible totals return `CapacityError::Infeasible` (never panic,
//!    never a silently broken placement);
//! 3. already-feasible placements pass through *untouched* — in
//!    particular the repair never increases the cost of a feasible input.

use dmn_approx::{enforce_capacities, respects_capacities, CapacityError};
use dmn_core::cost::{evaluate, UpdatePolicy};
use dmn_core::instance::{Instance, ObjectWorkload};
use dmn_core::placement::Placement;
use dmn_graph::generators;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn random_instance(seed: u64, n: usize, objects: usize) -> (Instance, ChaCha8Rng) {
    let mut r = ChaCha8Rng::seed_from_u64(seed);
    let g = generators::gnp_connected(n, 0.4, (1.0, 6.0), &mut r);
    let cs: Vec<f64> = (0..n).map(|_| r.random_range(0.5..4.0)).collect();
    let mut inst = Instance::builder(g).storage_costs(cs).build();
    for _ in 0..objects {
        let mut w = ObjectWorkload::new(n);
        for v in 0..n {
            if r.random_bool(0.7) {
                let mass = r.random_range(1..=4) as f64;
                if r.random_bool(0.3) {
                    w.writes[v] = mass;
                } else {
                    w.reads[v] = mass;
                }
            }
        }
        if w.total_requests() == 0.0 {
            w.reads[0] = 1.0;
        }
        inst.push_object(w);
    }
    (inst, r)
}

fn random_placement(n: usize, objects: usize, r: &mut ChaCha8Rng) -> Placement {
    let sets = (0..objects)
        .map(|_| {
            let k = r.random_range(1..=n.min(5));
            let mut set = Vec::with_capacity(k);
            for _ in 0..k {
                set.push(r.random_range(0..n));
            }
            set.push(r.random_range(0..n)); // ensure non-empty after dedup
            set
        })
        .collect();
    Placement::from_copy_sets(sets)
}

#[test]
fn repair_output_always_respects_capacities() {
    for seed in 0..24u64 {
        let n = 6 + (seed as usize % 5);
        let objects = 2 + (seed as usize % 4);
        let (inst, mut r) = random_instance(seed, n, objects);
        let placement = random_placement(n, objects, &mut r);
        // Random capacities with enough usable total for one copy each.
        let cap: Vec<usize> = loop {
            let cap: Vec<usize> = (0..n).map(|_| r.random_range(0..=2)).collect();
            if cap.iter().sum::<usize>() >= objects {
                break cap;
            }
        };
        let out = enforce_capacities(&inst, &placement, &cap)
            .unwrap_or_else(|e| panic!("seed {seed}: repair failed on feasible caps: {e:?}"));
        assert!(
            respects_capacities(&out, &cap),
            "seed {seed}: repaired placement violates capacities"
        );
        out.validate(n)
            .unwrap_or_else(|e| panic!("seed {seed}: unservable repair output: {e}"));
        let cost = evaluate(&inst, &out, UpdatePolicy::MstMulticast).total();
        assert!(cost.is_finite() && cost > 0.0, "seed {seed}");
    }
}

#[test]
fn piled_up_and_replicated_placements_are_repairable_at_cap_one() {
    // The two historical stress shapes: everything on one node, and full
    // replication (the latter used to panic the repair when every copy on
    // an over-full node was a last copy and no slack existed).
    for seed in [3u64, 7, 13] {
        let n = 8;
        let objects = 5;
        let (inst, _) = random_instance(seed, n, objects);
        let cap = vec![1usize; n];
        for placement in [
            Placement::from_copy_sets(vec![vec![0]; objects]),
            Placement::from_copy_sets(vec![(0..n).collect::<Vec<_>>(); objects]),
        ] {
            let out = enforce_capacities(&inst, &placement, &cap).expect("feasible caps");
            assert!(respects_capacities(&out, &cap), "seed {seed}");
            out.validate(n).unwrap();
        }
    }
}

#[test]
fn infeasible_totals_return_capacity_error() {
    for seed in 0..12u64 {
        let n = 5 + (seed as usize % 4);
        let objects = 3 + (seed as usize % 3);
        let (inst, mut r) = random_instance(seed + 100, n, objects);
        let placement = random_placement(n, objects, &mut r);
        // Strictly less usable capacity than objects.
        let mut cap = vec![0usize; n];
        for slot in 0..objects - 1 {
            cap[slot % n] += 1;
        }
        let err = enforce_capacities(&inst, &placement, &cap).unwrap_err();
        let CapacityError::Infeasible {
            total_capacity,
            objects: reported,
        } = err;
        assert_eq!(total_capacity, objects - 1, "seed {seed}");
        assert_eq!(reported, objects, "seed {seed}");
    }
}

#[test]
fn forbidden_nodes_do_not_count_as_capacity() {
    // Capacity parked on infinite-storage nodes is unusable; the repair
    // must report infeasibility instead of looping or panicking.
    let g = generators::path(4, |_| 1.0);
    let mut inst = Instance::builder(g)
        .storage_costs(vec![1.0, f64::INFINITY, f64::INFINITY, 1.0])
        .build();
    for v in 0..3 {
        inst.push_object(ObjectWorkload::from_sparse(4, [(v, 2.0)], []));
    }
    let placement = Placement::from_copy_sets(vec![vec![0], vec![0], vec![3]]);
    // 2 usable slots (nodes 0 and 3) for 3 objects, however much the
    // forbidden middle advertises.
    let err = enforce_capacities(&inst, &placement, &[1, 9, 9, 1]).unwrap_err();
    assert_eq!(
        err,
        CapacityError::Infeasible {
            total_capacity: 2,
            objects: 3
        }
    );
    let ok = enforce_capacities(&inst, &placement, &[2, 9, 9, 1]).unwrap();
    assert!(respects_capacities(&ok, &[2, 9, 9, 1]));
}

#[test]
fn feasible_inputs_pass_through_untouched() {
    for seed in 0..16u64 {
        let n = 6 + (seed as usize % 5);
        let objects = 2 + (seed as usize % 4);
        let (inst, mut r) = random_instance(seed + 200, n, objects);
        // Build a placement that is feasible by construction under the
        // sampled capacities.
        let cap: Vec<usize> = (0..n).map(|_| r.random_range(1..=2)).collect();
        let mut slack = cap.clone();
        let sets: Vec<Vec<usize>> = (0..objects)
            .map(|_| {
                // The first copy always fits: every node has capacity >= 1
                // and there are more nodes than objects here.
                let free: Vec<usize> = (0..n).filter(|&v| slack[v] > 0).collect();
                let v = free[r.random_range(0..free.len())];
                slack[v] -= 1;
                let mut set = vec![v];
                if r.random_bool(0.5) {
                    let free: Vec<usize> = (0..n)
                        .filter(|&v| slack[v] > 0 && !set.contains(&v))
                        .collect();
                    if !free.is_empty() {
                        let v = free[r.random_range(0..free.len())];
                        slack[v] -= 1;
                        set.push(v);
                    }
                }
                set
            })
            .collect();
        let placement = Placement::from_copy_sets(sets);
        assert!(respects_capacities(&placement, &cap), "seed {seed}: setup");
        let before = evaluate(&inst, &placement, UpdatePolicy::MstMulticast).total();
        let out = enforce_capacities(&inst, &placement, &cap).expect("feasible");
        assert_eq!(out, placement, "seed {seed}: feasible input was modified");
        let after = evaluate(&inst, &out, UpdatePolicy::MstMulticast).total();
        assert!(
            after <= before + 1e-12,
            "seed {seed}: repair increased cost on a feasible placement"
        );
    }
}
