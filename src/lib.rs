//! # dmn — Data Management in Networks
//!
//! A faithful, production-quality Rust implementation of
//!
//! > *Approximation Algorithms for Data Management in Networks*
//! > Christof Krick, Harald Räcke, Matthias Westermann — SPAA 2001.
//!
//! Given a network whose links charge a fee per transmitted object (`ct`)
//! and whose memory modules charge a fee per stored object (`cs`), plus
//! per-node read/write frequencies for a set of shared objects, the library
//! computes placements of object copies minimizing total (commercial) cost.
//!
//! Every placement engine is driven through one uniform surface — the
//! [`Solver`](dmn_solve::Solver) trait and the string-keyed registry in
//! [`solve`]:
//!
//! | registry name      | engine                                        | paper section |
//! |--------------------|-----------------------------------------------|---------------|
//! | `approx` (`krw`)   | 3-phase constant-factor approximation         | Section 2     |
//! | `tree-dp`          | optimal tuple DP on trees                     | Section 3.2   |
//! | `auto`             | `tree-dp` on trees, `approx` otherwise        | —             |
//! | `exact`            | exhaustive optimum (n ≤ 16)                   | ground truth  |
//! | `exact-restricted` | optimal restricted placement (Lemma 1)        | Section 2.1   |
//! | `greedy-local`     | local search on the true objective            | baseline      |
//! | `best-single`      | exact 1-copy optimum                          | baseline      |
//! | `random-k`         | k random copies (seeded)                      | baseline      |
//! | `full-replication` | copy on every allowed node                    | baseline      |
//! | `sharded-approx`   | `approx` partitioned across worker shards     | extension     |
//! | `capacitated`      | native capacitated engine (flow + local search) | extension   |
//!
//! ## Quickstart
//!
//! ```
//! use dmn::prelude::*;
//!
//! // A 4x4 mesh network: every link costs 1 per object, every memory
//! // module costs 5 per stored object.
//! let graph = dmn::graph::generators::grid(4, 4, |_, _| 1.0);
//! let mut instance = Instance::builder(graph)
//!     .uniform_storage_cost(5.0)
//!     .build();
//!
//! // One object, read once per period by every node, written once per
//! // period by node 5.
//! let mut object = ObjectWorkload::new(16);
//! for v in 0..16 {
//!     object.reads[v] = 1.0;
//! }
//! object.writes[5] = 1.0;
//! instance.push_object(object);
//!
//! // Pick any registered solver and solve. `SolveRequest` carries every
//! // knob (update policy, FL backend, phase toggles, seed, capacities).
//! let solver = solvers::by_name("approx").expect("registered");
//! let report = solver.solve(&instance, &SolveRequest::new());
//! assert!(!report.placement.copies(0).is_empty());
//! assert!(report.cost.total() > 0.0);
//! println!("{report}"); // placement, cost breakdown, per-phase timings
//!
//! // Compare engines through the same pipeline.
//! for s in solvers::all() {
//!     if s.supports(&instance).is_ok() {
//!         let r = s.solve(&instance, &SolveRequest::new());
//!         println!("{:<18} {:>10.2}", s.name(), r.cost.total());
//!     }
//! }
//! ```
//!
//! ## Crate map
//!
//! * [`solve`] — the unified `Solver` trait, `SolveRequest`/`SolveReport`
//!   pipeline, and the named registry (start here).
//! * [`approx`] — the paper's combinatorial **constant-factor approximation
//!   for arbitrary networks** (Section 2): facility location, then
//!   radius-driven copy addition, then radius-driven pruning; plus the
//!   instance-level baselines.
//! * [`tree`] — the paper's **optimal algorithms for trees** (Section 3):
//!   the `O(|X|·|V|·diam·log deg)` import/export-tuple dynamic program for
//!   the read-only case and its general read+write extension, plus reference
//!   solvers used for cross-validation.
//! * [`core`] — the cost model itself: instances, placements, the
//!   storage/read/update cost decomposition, write/storage radii, the
//!   restricted-placement transformation of Lemma 1, and the shared
//!   order-preserving parallel map.
//! * [`facility`] — uncapacitated facility location solvers (local search,
//!   Mettu–Plaxton, Jain–Vazirani, greedy, exact) backing phase 1.
//! * [`graph`] — the network substrate: shortest paths/metric closure, MSTs,
//!   Steiner trees, min-cost flow, topology generators, tree utilities.
//! * [`exact`] — exponential-time exact solvers for validation-scale
//!   instances (optimal and optimal-restricted placements).
//! * [`workloads`] — reproducible workload and scenario generators.
//! * [`dynamic`] — the online setting on the same cost model: request
//!   streams, count-based replicate/invalidate strategies, and a simulator
//!   for empirical competitive ratios against the static algorithms (whose
//!   oracle also implements `Solver`).

pub use dmn_approx as approx;
pub use dmn_core as core;
pub use dmn_dynamic as dynamic;
pub use dmn_exact as exact;
pub use dmn_facility as facility;
pub use dmn_graph as graph;
pub use dmn_solve as solve;
pub use dmn_tree as tree;
pub use dmn_workloads as workloads;

/// Convenient glob-import surface for applications and examples.
pub mod prelude {
    pub use dmn_approx::{place_all, place_object, ApproxConfig, FlSolverKind};
    pub use dmn_core::cost::{evaluate, evaluate_object, CostBreakdown, UpdatePolicy};
    pub use dmn_core::instance::{Instance, InstanceBuilder, ObjectWorkload};
    pub use dmn_core::placement::Placement;
    pub use dmn_graph::{apsp, Graph, Metric};
    pub use dmn_solve::{
        solvers, CapacitatedSolver, CapacityStats, PartitionStrategy, ShardedSolver, SolveReport,
        SolveRequest, Solver,
    };
}
